// Direct unit tests for the durable undo log (runtime/undo_log), including
// the strict per-record and batched per-epoch durability protocols and the
// self-certifying entry format the batched recovery walk depends on.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "pmem/flush.hpp"
#include "runtime/backend_sink.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {
namespace {

struct LogFixture : public ::testing::Test {
  LogFixture()
      : buffer(static_cast<char*>(std::aligned_alloc(64, kSize)), &std::free),
        backend(pmem::FlushKind::kCountOnly),
        sink(&backend) {
    std::memset(buffer.get(), 0, kSize);
  }

  UndoLog make_log(LogSyncMode mode = LogSyncMode::kStrict) {
    return UndoLog(buffer.get(), kSize, &sink, mode);
  }

  static constexpr std::size_t kSize = 16 * 1024;
  std::unique_ptr<char, decltype(&std::free)> buffer;
  pmem::FlushBackend backend;
  BackendSink sink;
};

TEST_F(LogFixture, FormatProducesValidEmptyLog) {
  UndoLog log = make_log();
  log.format();
  EXPECT_TRUE(log.valid());
  EXPECT_FALSE(log.needs_recovery());
  EXPECT_EQ(log.tail(), UndoLog::kHeaderSize);
}

TEST_F(LogFixture, UnformattedBufferIsInvalid) {
  UndoLog log = make_log();
  EXPECT_FALSE(log.valid());
  EXPECT_FALSE(log.needs_recovery());
}

TEST_F(LogFixture, RecordAdvancesTailAndNeedsRecovery) {
  UndoLog log = make_log();
  log.format();
  const std::uint64_t old_value = 0x1111;
  log.record(/*addr_token=*/100, &old_value, sizeof old_value);
  EXPECT_TRUE(log.needs_recovery());
  EXPECT_GT(log.tail(), UndoLog::kHeaderSize);
  EXPECT_EQ(log.records(), 1u);
}

TEST_F(LogFixture, CommitTruncates) {
  UndoLog log = make_log();
  log.format();
  const std::uint64_t v = 7;
  log.record(1, &v, sizeof v);
  log.commit();
  EXPECT_FALSE(log.needs_recovery());
  EXPECT_EQ(log.tail(), UndoLog::kHeaderSize);
}

TEST_F(LogFixture, RollbackAppliesNewestFirst) {
  UndoLog log = make_log();
  log.format();
  const std::uint64_t first = 0xAAAA;
  const std::uint64_t second = 0xBBBB;
  log.record(500, &first, sizeof first);   // older value of token 500
  log.record(500, &second, sizeof second); // newer overwrite of same token
  std::vector<std::uint64_t> applied;
  log.rollback([&](std::uint64_t token, const void* bytes, std::uint32_t len) {
    EXPECT_EQ(token, 500u);
    EXPECT_EQ(len, sizeof(std::uint64_t));
    std::uint64_t v;
    std::memcpy(&v, bytes, sizeof v);
    applied.push_back(v);
  });
  // Newest record first, so the final applied value is the *oldest* state.
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], second);
  EXPECT_EQ(applied[1], first);
  EXPECT_FALSE(log.needs_recovery());
}

TEST_F(LogFixture, RollbackRestoresExactBytesForManyRecords) {
  UndoLog log = make_log();
  log.format();
  Rng rng(6);
  // Simulated "memory": token -> value history; rollback must restore the
  // first (oldest) logged value per token.
  std::map<std::uint64_t, std::uint32_t> oldest;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t token = rng.below(20) * 8;
    const auto value = static_cast<std::uint32_t>(rng());
    log.record(token, &value, sizeof value);
    oldest.try_emplace(token, value);
  }
  std::map<std::uint64_t, std::uint32_t> restored;
  log.rollback([&](std::uint64_t token, const void* bytes, std::uint32_t len) {
    ASSERT_EQ(len, sizeof(std::uint32_t));
    std::uint32_t v;
    std::memcpy(&v, bytes, len);
    restored[token] = v;  // later (older) applications overwrite
  });
  EXPECT_EQ(restored, oldest);
}

TEST_F(LogFixture, VariablePayloadSizes) {
  UndoLog log = make_log();
  log.format();
  std::vector<char> payload(UndoLog::kMaxPayload, 'x');
  log.record(0, payload.data(), 1);
  log.record(8, payload.data(), 13);  // non-multiple-of-8 length
  log.record(16, payload.data(), UndoLog::kMaxPayload);
  std::size_t seen = 0;
  std::vector<std::uint32_t> lens;
  log.rollback([&](std::uint64_t, const void* bytes, std::uint32_t len) {
    ++seen;
    lens.push_back(len);
    EXPECT_EQ(static_cast<const char*>(bytes)[0], 'x');
  });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(lens, (std::vector<std::uint32_t>{UndoLog::kMaxPayload, 13, 1}));
}

TEST_F(LogFixture, StrictRecordPersistsEntryBeforeTail) {
  // Strict protocol check: each record() must flush the entry bytes and
  // fence before publishing the tail, and then flush the tail — at least
  // two flush+fence pairs per record.
  UndoLog log = make_log();
  log.format();
  backend.reset_counters();
  const std::uint64_t v = 1;
  log.record(0, &v, sizeof v);
  EXPECT_GE(backend.flush_count(), 2u);
  EXPECT_GE(backend.fence_count(), 2u);
  EXPECT_EQ(log.sync_points(), 1u);
  EXPECT_EQ(log.tail(), log.appended_tail());
}

TEST_F(LogFixture, OverflowAborts) {
  UndoLog log = make_log();
  log.format();
  std::vector<char> payload(UndoLog::kMaxPayload, 'y');
  EXPECT_DEATH(
      {
        for (int i = 0; i < 100000; ++i) {
          log.record(0, payload.data(), UndoLog::kMaxPayload);
        }
      },
      "overflow");
}

TEST_F(LogFixture, ReopenedLogSeesPriorRecords) {
  // A second UndoLog over the same bytes (a restarted process) sees the
  // uncommitted records of the first.
  {
    UndoLog log = make_log();
    log.format();
    const std::uint64_t v = 3;
    log.record(42, &v, sizeof v);
  }
  UndoLog reopened = make_log();
  EXPECT_TRUE(reopened.valid());
  EXPECT_TRUE(reopened.needs_recovery());
  std::size_t count = 0;
  reopened.rollback([&](std::uint64_t token, const void*, std::uint32_t) {
    EXPECT_EQ(token, 42u);
    ++count;
  });
  EXPECT_EQ(count, 1u);
}

// --- batched (epoch) durability ---------------------------------------------

TEST_F(LogFixture, BatchedRecordIssuesNoFlushesUntilSync) {
  UndoLog log = make_log(LogSyncMode::kBatched);
  log.format();
  backend.reset_counters();
  const std::uint64_t v = 9;
  for (int i = 0; i < 50; ++i) log.record(8 * i, &v, sizeof v);
  EXPECT_EQ(backend.flush_count(), 0u);
  EXPECT_EQ(backend.fence_count(), 0u);
  EXPECT_EQ(log.tail(), UndoLog::kHeaderSize);  // durable tail lags
  EXPECT_GT(log.appended_tail(), UndoLog::kHeaderSize);
  EXPECT_EQ(log.sync_points(), 0u);

  log.sync();
  // One epoch: one flush of the dirty log range + fence, one tail publish
  // + fence — not 2 * records.
  EXPECT_EQ(backend.fence_count(), 2u);
  EXPECT_LT(backend.flush_count(), 50u);
  EXPECT_EQ(log.sync_points(), 1u);
  EXPECT_EQ(log.tail(), log.appended_tail());

  backend.reset_counters();
  log.sync();  // nothing pending: O(1) no-op
  EXPECT_EQ(backend.flush_count(), 0u);
  EXPECT_EQ(backend.fence_count(), 0u);
}

TEST_F(LogFixture, BatchedUnsyncedEntriesSelfCertifyAcrossReopen) {
  // A crash before any sync leaves the durable tail at the header, but the
  // appended entries are found by the footer-walk (in the tmpfs/eADR model
  // the bytes are present; the check word certifies them).
  {
    UndoLog log = make_log(LogSyncMode::kBatched);
    log.format();
    const std::uint64_t a = 0xA, b = 0xB;
    log.record(0, &a, sizeof a);
    log.record(8, &b, sizeof b);
    // no sync, no commit: crash
  }
  UndoLog reopened = make_log(LogSyncMode::kBatched);
  EXPECT_TRUE(reopened.needs_recovery());
  EXPECT_EQ(reopened.tail(), UndoLog::kHeaderSize);
  EXPECT_GT(reopened.appended_tail(), UndoLog::kHeaderSize);
  std::vector<std::uint64_t> tokens;
  reopened.rollback([&](std::uint64_t token, const void*, std::uint32_t) {
    tokens.push_back(token);
  });
  EXPECT_EQ(tokens, (std::vector<std::uint64_t>{8, 0}));  // newest first
}

TEST_F(LogFixture, CommittedGenerationEntriesAreNotReplayed) {
  // After commit() the entry bytes still sit in the segment, but the
  // generation bump de-certifies them: a reopen must find nothing, even
  // though the stale chain is intact byte-for-byte.
  {
    UndoLog log = make_log(LogSyncMode::kBatched);
    log.format();
    const std::uint64_t v = 0xDEAD;
    log.record(16, &v, sizeof v);
    log.sync();
    log.commit();
  }
  UndoLog reopened = make_log(LogSyncMode::kBatched);
  EXPECT_TRUE(reopened.valid());
  EXPECT_FALSE(reopened.needs_recovery());
  std::size_t replayed = 0;
  reopened.rollback(
      [&](std::uint64_t, const void*, std::uint32_t) { ++replayed; });
  EXPECT_EQ(replayed, 0u);
}

TEST_F(LogFixture, TornEntryStopsTheRecoveryWalk) {
  // Corrupt the payload of the newest (unsynced) entry: its check word must
  // fail and recovery must replay only the intact prefix.
  UndoLog log = make_log(LogSyncMode::kBatched);
  log.format();
  const std::uint64_t a = 1, b = 2;
  log.record(0, &a, sizeof a);
  const std::uint64_t second_at = log.appended_tail();
  log.record(8, &b, sizeof b);
  buffer.get()[second_at + 16] ^= 0x5a;  // flip a payload byte (torn write)
  std::vector<std::uint64_t> tokens;
  log.rollback([&](std::uint64_t token, const void*, std::uint32_t) {
    tokens.push_back(token);
  });
  EXPECT_EQ(tokens, (std::vector<std::uint64_t>{0}));
}

TEST_F(LogFixture, NewGenerationRecordsAfterRecommitAreFound) {
  // Cycle: record+commit, then record again — only the second generation's
  // entry may be visible to recovery.
  UndoLog log = make_log();
  log.format();
  const std::uint64_t v1 = 1, v2 = 2;
  log.record(100, &v1, sizeof v1);
  log.commit();
  log.record(200, &v2, sizeof v2);
  std::vector<std::uint64_t> tokens;
  log.rollback([&](std::uint64_t token, const void*, std::uint32_t) {
    tokens.push_back(token);
  });
  EXPECT_EQ(tokens, (std::vector<std::uint64_t>{200}));
}

TEST_F(LogFixture, ParseLogSyncMode) {
  EXPECT_EQ(parse_log_sync_mode("strict"), LogSyncMode::kStrict);
  EXPECT_EQ(parse_log_sync_mode("batched"), LogSyncMode::kBatched);
  // Malformed env values fall back to the default, like parse_flush_kind.
  EXPECT_EQ(parse_log_sync_mode("bogus"), LogSyncMode::kStrict);
  EXPECT_EQ(parse_log_sync_mode(nullptr), LogSyncMode::kStrict);
  EXPECT_STREQ(to_string(LogSyncMode::kStrict), "strict");
  EXPECT_STREQ(to_string(LogSyncMode::kBatched), "batched");
}

}  // namespace
}  // namespace nvc::runtime
