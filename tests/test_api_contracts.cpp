// Contract and accessor coverage for small API surfaces that the larger
// suites exercise only implicitly.
#include <gtest/gtest.h>

#include "common/table.hpp"
#include "core/mrc.hpp"
#include "core/policy.hpp"
#include "core/write_cache.hpp"

namespace nvc {
namespace {

TEST(TablePrinterContract, RowArityMismatchDies) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(TablePrinterContract, EmptyHeaderDies) {
  EXPECT_DEATH(TablePrinter({}), "");
}

TEST(PolicyCounters, FlushRatioHandlesZeroStores) {
  core::PolicyCounters c;
  EXPECT_DOUBLE_EQ(c.flush_ratio(10), 0.0);
  c.stores = 4;
  EXPECT_DOUBLE_EQ(c.flush_ratio(1), 0.25);
}

TEST(PolicyNames, NameMatchesKind) {
  const auto p = core::make_policy(core::PolicyKind::kSoftCache);
  EXPECT_STREQ(p->name(), "SC");
  EXPECT_EQ(p->kind(), core::PolicyKind::kSoftCache);
}

TEST(MrcContract, OutOfRangeSizeDies) {
  core::Mrc mrc(std::vector<double>{0.5, 0.4});
  EXPECT_DEATH((void)mrc.at(0), "");
  EXPECT_DEATH((void)mrc.at(3), "");
  EXPECT_DOUBLE_EQ(mrc.at(2), 0.4);
}

TEST(MrcContract, ValuesSpanMatchesAt) {
  core::Mrc mrc(std::vector<double>{0.9, 0.5, 0.1});
  const auto values = mrc.values();
  ASSERT_EQ(values.size(), 3u);
  for (std::size_t c = 1; c <= 3; ++c) {
    EXPECT_DOUBLE_EQ(values[c - 1], mrc.at(c));
  }
}

TEST(WriteCacheContract, CapacityBoundsEnforced) {
  EXPECT_DEATH(core::WriteCache(0), "");
  EXPECT_DEATH(core::WriteCache(core::WriteCache::kMaxCapacity + 1), "");
}

TEST(WriteCacheStats, DerivedQuantitiesConsistent) {
  core::WriteCache cache(2);
  core::CountingSink sink;
  cache.access(1, sink);
  cache.access(1, sink);
  cache.access(2, sink);
  cache.access(3, sink);  // evicts 1
  cache.flush_all(sink);  // flushes 2, 3
  const auto& s = cache.stats();
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses(), 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.fase_flushes, 2u);
  EXPECT_EQ(s.flushes(), 3u);
  EXPECT_EQ(s.flushes(), sink.count());
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 0.25);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_EQ(cache.size(), 0u);  // contents were flushed, not stats-reset
}

TEST(CountingSink, ResetsToZero) {
  core::CountingSink sink;
  sink.flush_line(1);
  sink.flush_line(2);
  EXPECT_EQ(sink.count(), 2u);
  sink.reset();
  EXPECT_EQ(sink.count(), 0u);
}

}  // namespace
}  // namespace nvc
