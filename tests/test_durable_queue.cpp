// Durable MPMC queue (structures/durable_queue.hpp) — `ctest -L
// structures`, also in the tsan tier.
//
// Two execution regimes share the same op bodies:
//   - deterministic: seeded turnstile (one thread at a time, switches at
//     persist steps), recorded history checked by the Wing–Gong
//     linearizability search, recovery contract on ShadowPmem;
//   - free-running: NVC_STRUCT_THREADS real threads over the thread-safe
//     heap backend with no turnstile — the tsan stress — with the same
//     linearizability check on the recorded history.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "structures/durable_queue.hpp"
#include "structures/pspace.hpp"
#include "testing/history.hpp"
#include "testing/interleave.hpp"
#include "testing/linearizability.hpp"
#include "testing/seed.hpp"

namespace {

using nvc::Rng;
using nvc::structures::DurableQueue;
using nvc::structures::HeapPSpace;
using nvc::structures::ShadowPSpace;
using nvc::testing::check_linearizable;
using nvc::testing::HistoryRecorder;
using nvc::testing::InterleaveScheduler;
using nvc::testing::LinVerdict;
using nvc::testing::Op;
using nvc::testing::OpCode;
using nvc::testing::QueueModel;
using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

void recorded_enqueue(DurableQueue& q, HistoryRecorder& rec,
                      std::size_t thread, std::uint64_t value) {
  const std::size_t op = rec.begin(thread, OpCode::kEnqueue, value);
  q.enqueue(value);
  rec.end(thread, op, /*ok=*/true);
}

void recorded_dequeue(DurableQueue& q, HistoryRecorder& rec,
                      std::size_t thread) {
  const std::size_t op = rec.begin(thread, OpCode::kDequeue, 0);
  std::uint64_t v = 0;
  const bool ok = q.dequeue(&v);
  rec.end(thread, op, ok, v);
}

TEST(DurableQueue, SingleThreadedFifoAndRecovery) {
  ShadowPSpace ps(64 * 1024, /*elide=*/true);
  DurableQueue q(ps);
  for (std::uint64_t v = 1; v <= 5; ++v) q.enqueue(v);
  std::uint64_t v = 0;
  ASSERT_TRUE(q.dequeue(&v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(q.dequeue(&v));
  EXPECT_EQ(v, 2u);
  // Every completed op persisted before returning: the durable image IS the
  // logical queue, with no extra flushing step.
  EXPECT_EQ(q.recovered_contents(), (std::vector<std::uint64_t>{3, 4, 5}));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.dequeue(&v));
  EXPECT_FALSE(q.dequeue(&v));
  EXPECT_TRUE(q.recovered_contents().empty());
  EXPECT_EQ(ps.table().pending_count(), 0u);
}

TEST(DurableQueue, TurnstileInterleavingsAreLinearizable) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int iter = 0; iter < 12; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    HeapPSpace ps(256 * 1024, /*elide=*/true);
    DurableQueue q(ps);
    InterleaveScheduler sched(seed);
    ps.set_yield_hook(sched.hook());
    constexpr std::size_t kThreads = 3;
    HistoryRecorder rec(kThreads);
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < kThreads; ++i) {
      bodies.push_back([&, i](std::size_t) {
        for (std::uint64_t k = 0; k < 4; ++k) {
          recorded_enqueue(q, rec, i, 100 * (i + 1) + k);
          if (k % 2 == 1) recorded_dequeue(q, rec, i);
        }
      });
    }
    sched.run(bodies);
    const auto result = check_linearizable<QueueModel>(rec.snapshot());
    ASSERT_EQ(result.verdict, LinVerdict::kOk) << result.detail;
    EXPECT_EQ(ps.table().pending_count(), 0u);
  }
}

TEST(DurableQueue, ElisionCutsMediaWritesOnHelpedSchedules) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  std::uint64_t writes_on = 0, writes_off = 0, elisions = 0, helps = 0;
  for (int iter = 0; iter < 16; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    for (const bool elide : {true, false}) {
      HeapPSpace ps(256 * 1024, elide);
      DurableQueue q(ps);
      InterleaveScheduler sched(seed);  // same schedule either way
      ps.set_yield_hook(sched.hook());
      std::vector<std::function<void(std::size_t)>> bodies;
      for (std::size_t i = 0; i < 3; ++i) {
        bodies.push_back([&, i](std::size_t) {
          for (std::uint64_t k = 0; k < 6; ++k) q.enqueue(10 * i + k);
          std::uint64_t v;
          for (int d = 0; d < 3; ++d) q.dequeue(&v);
        });
      }
      sched.run(bodies);
      (elide ? writes_on : writes_off) += ps.media_writes();
      if (elide) {
        elisions += ps.helper_elisions();
        helps += ps.helper_elisions() + ps.helper_flushes();
      }
    }
  }
  // The contended schedules must actually produce helping, some of it
  // elided, and elision must never increase media traffic.
  EXPECT_GT(helps, 0u);
  EXPECT_GT(elisions, 0u);
  EXPECT_LE(writes_on, writes_off);
}

TEST(DurableQueue, FreeRunningStressIsLinearizable) {
  const std::size_t threads = static_cast<std::size_t>(
      nvc::env_int("NVC_STRUCT_THREADS", 4));
  const std::size_t per = std::max<std::size_t>(2, 56 / threads);
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    HeapPSpace ps((per * threads + 8) * 64 * 2, /*elide=*/true);
    DurableQueue q(ps);
    InterleaveScheduler sched(seed, /*free_running=*/true);
    ps.set_yield_hook(sched.hook());  // no-ops: genuine concurrency
    HistoryRecorder rec(threads);
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < threads; ++i) {
      bodies.push_back([&, i, seed](std::size_t) {
        Rng rng(seed ^ (0x9E3779B9u * (i + 1)));
        for (std::size_t k = 0; k < per; ++k) {
          if (rng.chance(0.6)) {
            recorded_enqueue(q, rec, i, 1000 * (i + 1) + k);
          } else {
            recorded_dequeue(q, rec, i);
          }
        }
      });
    }
    sched.run(bodies);
    const auto history = rec.snapshot();
    const auto result = check_linearizable<QueueModel>(history);
    // kBudget would mean the history outgrew the bounded search — shrink
    // `per` rather than letting the check silently pass.
    ASSERT_EQ(result.verdict, LinVerdict::kOk) << result.detail;
    // Conservation: every dequeued value was enqueued exactly once.
    std::multiset<std::uint64_t> enq, deq;
    for (const Op& op : history) {
      if (op.code == OpCode::kEnqueue) enq.insert(op.arg);
      if (op.code == OpCode::kDequeue && op.ok) deq.insert(op.ret);
    }
    for (const std::uint64_t v : deq) EXPECT_EQ(enq.count(v), 1u);
    EXPECT_EQ(ps.table().pending_count(), 0u);
  }
}

}  // namespace
