// Write-admission policies and endurance accounting (DESIGN.md §12).
//
// Covers the doorkeeper detector, the MRC-driven reuse verdict and its
// burst-boundary republish, the make_policy attachment rules, the exact
// byte accounting of the ablation microworkloads (including the ≥30%
// write-once reduction bound the bench gates), and the WearTracker's
// race-free totals under the flush-behind worker pools (the *Pool* cases
// carry the tsan label).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/admission.hpp"
#include "core/policy.hpp"
#include "core/write_cache.hpp"
#include "pmem/flush.hpp"
#include "pmem/shadow.hpp"
#include "pmem/wear.hpp"
#include "runtime/runtime.hpp"
#include "workloads/admission_micro.hpp"

namespace nvc {
namespace {

using core::AdmissionConfig;
using core::AdmissionFilter;
using core::AdmitMode;
using core::PolicyConfig;
using core::PolicyKind;

TEST(AdmitMode, ParseRoundTrip) {
  for (const AdmitMode mode :
       {AdmitMode::kAlways, AdmitMode::kWriteOnce, AdmitMode::kReuse}) {
    const auto parsed = core::parse_admit_mode(core::to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(core::parse_admit_mode("sometimes").has_value());
  EXPECT_FALSE(core::parse_admit_mode("").has_value());
}

TEST(AdmissionFilter, DoorkeeperBypassesFirstTouchAdmitsSecond) {
  AdmissionConfig config;
  config.mode = AdmitMode::kWriteOnce;
  AdmissionFilter filter(config);
  EXPECT_TRUE(filter.should_bypass(100));   // first touch in the window
  EXPECT_FALSE(filter.should_bypass(100));  // second touch: reuse, admit
  EXPECT_FALSE(filter.should_bypass(100));
  EXPECT_TRUE(filter.should_bypass(200));
  EXPECT_EQ(filter.counters().bypassed, 2u);
  EXPECT_EQ(filter.counters().readmitted, 2u);
}

// The doorkeeper hashes lines relative to `line_base` (the Runtime stamps
// its region base line there), so the collision pattern — and with it every
// exact_* counter in the admission ablation — is a function of offsets
// within the region, not of where ASLR happened to map it.
TEST(AdmissionFilter, CollisionPatternIsRelativeToLineBase) {
  constexpr LineAddr kBaseA = 0x7f12'3456'0000ULL / 64;
  constexpr LineAddr kBaseB = 0x5e98'7654'0000ULL / 64;
  AdmissionConfig a;
  a.mode = AdmitMode::kWriteOnce;
  a.window = 64;  // small table: offsets past the window force collisions
  AdmissionConfig b = a;
  a.line_base = kBaseA;
  b.line_base = kBaseB;
  AdmissionFilter fa(a);
  AdmissionFilter fb(b);
  std::uint64_t state = 42;
  for (int i = 0; i < 4096; ++i) {
    const LineAddr offset = splitmix64(state) % 512;
    EXPECT_EQ(fa.should_bypass(kBaseA + offset),
              fb.should_bypass(kBaseB + offset))
        << "offset " << offset << " diverged at step " << i;
  }
  EXPECT_EQ(fa.counters().bypassed, fb.counters().bypassed);
  EXPECT_EQ(fa.counters().readmitted, fb.counters().readmitted);
}

TEST(AdmissionFilter, ReuseModeStartsDisarmed) {
  AdmissionConfig config;
  config.mode = AdmitMode::kReuse;
  AdmissionFilter filter(config);
  EXPECT_FALSE(filter.bypass_armed());
  // No MRC evidence yet: everything is admitted, but the doorkeeper still
  // accumulates reuse evidence.
  EXPECT_FALSE(filter.should_bypass(100));
  EXPECT_FALSE(filter.should_bypass(100));
  EXPECT_EQ(filter.counters().bypassed, 0u);
  EXPECT_EQ(filter.counters().readmitted, 1u);
}

TEST(AdmissionFilter, MakePolicyAttachmentRules) {
  PolicyConfig config;
  config.admission.mode = AdmitMode::kWriteOnce;
  EXPECT_EQ(core::make_policy(PolicyKind::kEager, config)->admission(),
            nullptr);
  EXPECT_EQ(core::make_policy(PolicyKind::kBest, config)->admission(),
            nullptr);
  EXPECT_NE(core::make_policy(PolicyKind::kLazy, config)->admission(),
            nullptr);
  EXPECT_NE(core::make_policy(PolicyKind::kAtlas, config)->admission(),
            nullptr);
  EXPECT_NE(core::make_policy(PolicyKind::kSoftCache, config)->admission(),
            nullptr);
  EXPECT_NE(
      core::make_policy(PolicyKind::kSoftCacheOffline, config)->admission(),
      nullptr);

  // kReuse needs the online sampler's MRC: SC only.
  config.admission.mode = AdmitMode::kReuse;
  EXPECT_NE(core::make_policy(PolicyKind::kSoftCache, config)->admission(),
            nullptr);
  EXPECT_EQ(
      core::make_policy(PolicyKind::kSoftCacheOffline, config)->admission(),
      nullptr);
  EXPECT_EQ(core::make_policy(PolicyKind::kLazy, config)->admission(),
            nullptr);

  config.admission.mode = AdmitMode::kAlways;
  EXPECT_EQ(core::make_policy(PolicyKind::kSoftCache, config)->admission(),
            nullptr);
}

TEST(AdmissionFilter, SoftCacheBypassWritesThroughImmediately) {
  PolicyConfig config;
  config.cache_size = 4;
  config.admission.mode = AdmitMode::kWriteOnce;
  const auto policy = core::make_policy(PolicyKind::kSoftCacheOffline, config);
  core::CountingSink sink;

  policy->on_fase_begin(sink);
  policy->on_store(10, sink);  // first touch: written through, not cached
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_EQ(policy->counters().bypassed, 1u);
  policy->on_store(10, sink);  // second touch: admitted into the cache
  EXPECT_EQ(sink.count(), 1u);
  policy->on_store(10, sink);  // now buffered: combines
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_EQ(policy->counters().combined, 1u);
  policy->on_fase_end(sink);
  EXPECT_EQ(sink.count(), 2u);  // the admitted line flushes at FASE end
  EXPECT_EQ(policy->counters().stores, 3u);
}

TEST(AdmissionFilter, LazyAndAtlasBypassSkipTheDeferredStructure) {
  for (const PolicyKind kind : {PolicyKind::kLazy, PolicyKind::kAtlas}) {
    PolicyConfig config;
    config.admission.mode = AdmitMode::kWriteOnce;
    const auto policy = core::make_policy(kind, config);
    core::CountingSink sink;
    policy->on_fase_begin(sink);
    policy->on_store(10, sink);
    EXPECT_EQ(sink.count(), 1u) << core::to_string(kind);
    policy->on_fase_end(sink);
    // Bypassed on first touch, so nothing was recorded for FASE-end flush.
    EXPECT_EQ(sink.count(), 1u) << core::to_string(kind);
  }
}

TEST(AdmissionFilter, ReuseVerdictArmsOnStreamingDisarmsOnReuse) {
  PolicyConfig config;
  config.cache_size = 8;
  config.admission.mode = AdmitMode::kReuse;
  config.sampler.burst_length = 64;
  config.sampler.hibernation_length = 16;  // keep re-sampling (second burst)
  const auto policy = core::make_policy(PolicyKind::kSoftCache, config);
  core::CountingSink sink;

  // Burst 1: pure streaming — every line distinct, MRC flat at miss≈1.
  policy->on_fase_begin(sink);
  for (LineAddr line = 1; line <= 64; ++line) policy->on_store(line, sink);
  policy->on_fase_end(sink);
  ASSERT_NE(policy->admission(), nullptr);
  EXPECT_TRUE(policy->admission()->bypass_armed());
  EXPECT_EQ(policy->admission()->counters().verdicts, 1u);

  // Hibernation gap, then burst 2: two lines ping-pong — reuse-heavy, the
  // verdict must disarm at the burst boundary.
  policy->on_fase_begin(sink);
  for (int i = 0; i < 16 + 64 + 8; ++i) {
    policy->on_store(1000 + (i & 1), sink);
  }
  policy->on_fase_end(sink);
  EXPECT_FALSE(policy->admission()->bypass_armed());
  EXPECT_GE(policy->admission()->counters().verdicts, 2u);
}

// --- ablation microworkloads (the acceptance bound) -------------------------

TEST(AdmissionMicro, WriteOnceCutsStreamingBytesPerFase) {
  using workloads::AdmissionWorkload;
  const auto always = workloads::run_admission_micro(
      PolicyKind::kSoftCacheOffline, AdmitMode::kAlways,
      AdmissionWorkload::kWriteOnceStream, 32);
  const auto write_once = workloads::run_admission_micro(
      PolicyKind::kSoftCacheOffline, AdmitMode::kWriteOnce,
      AdmissionWorkload::kWriteOnceStream, 32);

  EXPECT_EQ(always.bypassed, 0u);
  EXPECT_GT(write_once.bypassed, 0u);
  ASSERT_GT(always.media_bytes, 0u);
  const double reduction =
      1.0 - write_once.bytes_per_fase / always.bytes_per_fase;
  // The ISSUE's acceptance bound: ≥30% fewer bytes written to media per
  // committed FASE on the write-once streaming workload.
  EXPECT_GE(reduction, 0.30) << "always=" << always.bytes_per_fase
                             << " write-once=" << write_once.bytes_per_fase;
}

TEST(AdmissionMicro, WriteOnceIsByteNeutralOnReuseHeavyTraffic) {
  using workloads::AdmissionWorkload;
  const auto always = workloads::run_admission_micro(
      PolicyKind::kSoftCacheOffline, AdmitMode::kAlways,
      AdmissionWorkload::kReuseHeavy, 32);
  const auto write_once = workloads::run_admission_micro(
      PolicyKind::kSoftCacheOffline, AdmitMode::kWriteOnce,
      AdmissionWorkload::kReuseHeavy, 32);
  ASSERT_GT(always.media_bytes, 0u);
  const double drift =
      std::abs(static_cast<double>(write_once.media_bytes) -
               static_cast<double>(always.media_bytes)) /
      static_cast<double>(always.media_bytes);
  // Re-admission from the doorkeeper keeps reuse-heavy traffic combining;
  // only the first-FASE cold touches differ.
  EXPECT_LE(drift, 0.05);
}

TEST(AdmissionMicro, ReuseModeAdaptsPerWorkload) {
  using workloads::AdmissionWorkload;
  const auto stream_always = workloads::run_admission_micro(
      PolicyKind::kSoftCache, AdmitMode::kAlways,
      AdmissionWorkload::kWriteOnceStream, 32);
  const auto stream_reuse = workloads::run_admission_micro(
      PolicyKind::kSoftCache, AdmitMode::kReuse,
      AdmissionWorkload::kWriteOnceStream, 32);
  // Streaming MRC evidence arms the bypass after the first burst.
  EXPECT_GT(stream_reuse.bypassed, 0u);
  EXPECT_LT(stream_reuse.media_bytes, stream_always.media_bytes);

  const auto hot_always = workloads::run_admission_micro(
      PolicyKind::kSoftCache, AdmitMode::kAlways,
      AdmissionWorkload::kReuseHeavy, 32);
  const auto hot_reuse = workloads::run_admission_micro(
      PolicyKind::kSoftCache, AdmitMode::kReuse,
      AdmissionWorkload::kReuseHeavy, 32);
  // Reuse-heavy evidence keeps (or puts) the bypass disarmed: byte counts
  // match `always` exactly — the verdict never arms, so no store bypasses.
  EXPECT_EQ(hot_reuse.bypassed, 0u);
  EXPECT_EQ(hot_reuse.media_bytes, hot_always.media_bytes);
}

TEST(AdmissionMicro, DeterministicAcrossRuns) {
  using workloads::AdmissionWorkload;
  const auto a = workloads::run_admission_micro(
      PolicyKind::kAtlas, AdmitMode::kWriteOnce,
      AdmissionWorkload::kWriteOnceStream, 16);
  const auto b = workloads::run_admission_micro(
      PolicyKind::kAtlas, AdmitMode::kWriteOnce,
      AdmissionWorkload::kWriteOnceStream, 16);
  EXPECT_EQ(a.media_bytes, b.media_bytes);
  EXPECT_EQ(a.bypassed, b.bypassed);
  EXPECT_EQ(a.media_line_writes, b.media_line_writes);
}

// --- endurance accounting ----------------------------------------------------

TEST(WearTracker, CountsMaxMeanAndSkew) {
  pmem::WearTracker wear;
  for (int i = 0; i < 6; ++i) wear.record(1);
  wear.record(2);
  wear.record(3);
  EXPECT_EQ(wear.line_writes(), 8u);
  EXPECT_EQ(wear.bytes_written(), 8u * kCacheLineSize);
  EXPECT_EQ(wear.line_write_count(1), 6u);
  EXPECT_EQ(wear.line_write_count(42), 0u);
  const pmem::WearStats s = wear.stats();
  EXPECT_EQ(s.lines_touched, 3u);
  EXPECT_EQ(s.max_line_writes, 6u);
  EXPECT_DOUBLE_EQ(s.mean_line_writes, 8.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.leveling_skew, 6.0 / (8.0 / 3.0) - 1.0);
  wear.reset();
  EXPECT_EQ(wear.line_writes(), 0u);
  EXPECT_EQ(wear.stats().lines_touched, 0u);
}

TEST(WearTracker, FlushBackendRecordsSuccessfulWriteBacks) {
  auto wear = std::make_shared<pmem::WearTracker>();
  pmem::FlushBackend backend(pmem::FlushKind::kCountOnly);
  backend.set_wear_tracker(wear);
  alignas(kCacheLineSize) char lines[3 * kCacheLineSize] = {};
  backend.flush(&lines[0]);
  backend.flush(&lines[0]);
  backend.issue(&lines[kCacheLineSize]);
  EXPECT_EQ(wear->line_writes(), 3u);
  EXPECT_EQ(wear->line_write_count(line_of(
                reinterpret_cast<PmAddr>(&lines[0]))),
            2u);
  EXPECT_EQ(backend.media_writes(), 3u);
  EXPECT_EQ(backend.bytes_written(), 3u * kCacheLineSize);
}

TEST(WearTracker, ShadowPmemCountsBytesIncludingTornPrefixes) {
  pmem::ShadowPmem shadow(4 * kCacheLineSize);
  const std::uint64_t v = 7;
  shadow.store_value(0, v);
  shadow.store_value(kCacheLineSize, v);
  EXPECT_TRUE(shadow.flush_line(0));
  EXPECT_TRUE(shadow.flush_line(0));  // clean line: still a media write
  shadow.flush_line_torn(1, 16);
  EXPECT_EQ(shadow.bytes_written(), 2 * kCacheLineSize + 16);
  EXPECT_EQ(shadow.line_write_count(0), 2u);
  EXPECT_EQ(shadow.line_write_count(1), 1u);
  const pmem::WearStats s = shadow.wear_stats();
  EXPECT_EQ(s.lines_touched, 2u);
  EXPECT_EQ(s.max_line_writes, 2u);
  // Frozen flushes must not wear the media: power is off.
  shadow.freeze();
  shadow.flush_line(0);
  EXPECT_EQ(shadow.line_write_count(0), 2u);
}

TEST(WearTracker, RuntimeStatsAndHealthSurfaceWear) {
  runtime::RuntimeConfig config;
  config.region_name = "test-admit-wear";
  config.flush = pmem::FlushKind::kCountOnly;
  config.policy = PolicyKind::kEager;
  config.wear_tracking = true;
  runtime::Runtime rt(config);
  {
    auto* p = static_cast<std::uint64_t*>(rt.pm_alloc(1024));
    runtime::FaseScope fase(rt);
    for (int i = 0; i < 16; ++i) rt.pstore(p[8 * i], std::uint64_t(i));
  }
  const runtime::RuntimeStats s = rt.stats();
  EXPECT_GT(s.media_line_writes, 0u);
  // Count backend, no injector: every data flush reaches the media, and
  // the tracker covers the same backends the flush counters do.
  EXPECT_EQ(s.media_line_writes, s.flushes);
  EXPECT_EQ(s.media_bytes_written, s.media_line_writes * kCacheLineSize);
  EXPECT_GT(s.wear_lines_touched, 0u);
  EXPECT_GE(s.wear_max_line_writes, 1u);
  EXPECT_GT(s.wear_mean_line_writes, 0.0);

  const runtime::HealthReport health = rt.health();
  EXPECT_TRUE(health.wear_attached);
  EXPECT_EQ(health.media_bytes_written, s.media_bytes_written);
  EXPECT_EQ(health.wear_max_line_writes, s.wear_max_line_writes);
  rt.destroy_storage();

  runtime::RuntimeConfig off = config;
  off.region_name = "test-admit-wear-off";
  off.wear_tracking = false;
  runtime::Runtime rt2(off);
  EXPECT_FALSE(rt2.health().wear_attached);
  EXPECT_EQ(rt2.stats().media_bytes_written, 0u);
  rt2.destroy_storage();
}

TEST(WearTracker, BypassedStoresSurfaceInRuntimeStats) {
  runtime::RuntimeConfig config;
  config.region_name = "test-admit-bypass-stats";
  config.flush = pmem::FlushKind::kCountOnly;
  config.policy = PolicyKind::kSoftCacheOffline;
  config.policy_config.admission.mode = AdmitMode::kWriteOnce;
  runtime::Runtime rt(config);
  {
    auto* p = static_cast<std::uint8_t*>(rt.pm_alloc(64 * kCacheLineSize));
    runtime::FaseScope fase(rt);
    const std::uint64_t v = 1;
    for (int i = 0; i < 32; ++i) {
      rt.pstore(p + static_cast<std::size_t>(i) * kCacheLineSize, &v,
                sizeof(v));
    }
  }
  EXPECT_GT(rt.stats().bypassed_stores, 0u);
  rt.destroy_storage();
}

// --- wear determinism under worker pools (tsan label) ------------------------

namespace {

/// Fixed multi-threaded store schedule; returns (media_line_writes,
/// media_bytes_written) from the shared tracker.
std::pair<std::uint64_t, std::uint64_t> pool_wear_run(const std::string& name,
                                                      bool async_flush) {
  runtime::RuntimeConfig config;
  config.region_name = name;
  config.flush = pmem::FlushKind::kCountOnly;
  config.policy = PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 8;
  config.async_flush = async_flush;
  config.flush_queue_depth = 64;
  config.wear_tracking = true;
  runtime::Runtime rt(config);

  constexpr int kThreads = 4;
  constexpr std::size_t kLinesPerThread = 24;
  auto* base = static_cast<std::uint8_t*>(
      rt.pm_alloc(kThreads * kLinesPerThread * kCacheLineSize +
                  kCacheLineSize));
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  base += align_up(addr, kCacheLineSize) - addr;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rt, base, t] {
      std::uint8_t* mine = base + static_cast<std::size_t>(t) *
                                      kLinesPerThread * kCacheLineSize;
      const std::uint64_t v = 0xabcdULL + static_cast<std::uint64_t>(t);
      for (int f = 0; f < 16; ++f) {
        runtime::FaseScope fase(rt);
        for (std::size_t i = 0; i < 32; ++i) {
          const std::size_t line = (static_cast<std::size_t>(f) * 7 + i) %
                                   kLinesPerThread;
          rt.pstore(mine + line * kCacheLineSize, &v, sizeof(v));
        }
      }
      rt.thread_flush();
    });
  }
  for (auto& th : threads) th.join();

  const runtime::RuntimeStats s = rt.stats();
  rt.destroy_storage();
  return {s.media_line_writes, s.media_bytes_written};
}

}  // namespace

TEST(WearPool, CountersAreExactAndDeterministicUnderWorkerPools) {
  // Exactly-once flush traffic (DESIGN.md §8) means the media sees the same
  // write-backs whether lines drain synchronously or through the pool, and
  // the release-published tracker totals must agree run to run.
  const auto sync_run = pool_wear_run("test-admit-pool-sync", false);
  const auto async_a = pool_wear_run("test-admit-pool-async-a", true);
  const auto async_b = pool_wear_run("test-admit-pool-async-b", true);
  EXPECT_GT(sync_run.first, 0u);
  EXPECT_EQ(async_a.first, sync_run.first);
  EXPECT_EQ(async_a.second, sync_run.second);
  EXPECT_EQ(async_b.first, async_a.first);
  EXPECT_EQ(async_b.second, async_a.second);
}

}  // namespace
}  // namespace nvc
