// Tests for the asynchronous burst-analysis pipeline: the background
// AnalysisWorker, the sampler's O(1) burst handoff, and the SC policy's
// deferred FASE-boundary resize. The whole file carries the `tsan` ctest
// label; build with -DNVC_SANITIZE=thread and run `ctest -L tsan` to check
// the handoff protocol under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/policy.hpp"
#include "core/sampler.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {
namespace {

// A dense (already renamed) cyclic trace: ids 0..period-1 repeated.
std::vector<LineAddr> cyclic_trace(std::size_t n, LineAddr period) {
  std::vector<LineAddr> trace(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace[i] = static_cast<LineAddr>(i % period);
  }
  return trace;
}

SamplerConfig sampler_config(std::uint64_t burst, bool async) {
  SamplerConfig config;
  config.burst_length = burst;
  config.knee.max_size = 50;
  config.async_analysis = async;
  return config;
}

void expect_same_analysis(const Mrc& a, const Mrc& b, const KneeResult& ra,
                          const KneeResult& rb) {
  ASSERT_EQ(a.max_size(), b.max_size());
  const auto va = a.values();
  const auto vb = b.values();
  // Byte-identical, not approximately equal: both paths must run exactly the
  // same pipeline on exactly the same renamed trace.
  EXPECT_TRUE(std::equal(va.begin(), va.end(), vb.begin()));
  EXPECT_EQ(ra.chosen_size, rb.chosen_size);
  EXPECT_EQ(ra.had_knees, rb.had_knees);
  EXPECT_EQ(ra.candidates, rb.candidates);
}

// --- AnalysisWorker / AnalysisChannel ----------------------------------------

TEST(AnalysisWorker, WorkerResultMatchesDirectAnalysis) {
  const auto trace = cyclic_trace(512, 9);
  KneeConfig knee;
  knee.max_size = 50;
  const BurstAnalysis direct = analyze_burst(trace, knee);

  auto channel = AnalysisWorker::shared().open_channel();
  ASSERT_TRUE(channel->submit(std::vector<LineAddr>(trace), knee));
  channel->drain();
  EXPECT_TRUE(channel->idle());
  EXPECT_EQ(channel->completed(), 1u);
  auto result = channel->take_result();
  ASSERT_TRUE(result.has_value());
  expect_same_analysis(result->mrc, direct.mrc, result->selection,
                       direct.selection);
  EXPECT_FALSE(channel->take_result().has_value());  // consumed
  channel->close();
}

TEST(AnalysisWorker, AnalysisRunsOffTheSubmittingThread) {
  auto channel = AnalysisWorker::shared().open_channel();
  KneeConfig knee;
  knee.max_size = 20;
  ASSERT_TRUE(channel->submit(cyclic_trace(256, 7), knee));
  channel->drain();
  EXPECT_NE(channel->last_analysis_thread(), std::this_thread::get_id());
  channel->close();
}

TEST(AnalysisWorker, ServesManyJobsFromOneChannel) {
  auto channel = AnalysisWorker::shared().open_channel();
  KneeConfig knee;
  knee.max_size = 20;
  std::uint64_t accepted = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<LineAddr> trace = cyclic_trace(128, 5);
    if (channel->submit(std::move(trace), knee)) {
      ++accepted;
    } else {
      // Ring full: the burst is handed back intact for the sync fallback.
      EXPECT_EQ(trace.size(), 128u);
    }
    if (i % 8 == 7) channel->drain();
  }
  channel->drain();
  EXPECT_EQ(channel->completed(), accepted);
  EXPECT_TRUE(channel->idle());
  channel->close();
}

// --- BurstSampler async mode --------------------------------------------------

TEST(AsyncSampler, MatchesSyncByteIdentical) {
  constexpr std::uint64_t kBurst = 1200;
  BurstSampler sync_sampler(sampler_config(kBurst, false));
  BurstSampler async_sampler(sampler_config(kBurst, true));

  std::optional<std::size_t> sync_selected;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const LineAddr line = static_cast<LineAddr>(i % 12);
    if (auto s = sync_sampler.on_store(line)) sync_selected = s;
    EXPECT_FALSE(async_sampler.on_store(line).has_value());
    if (i % 64 == 63) {
      sync_sampler.on_fase_boundary();
      async_sampler.on_fase_boundary();
    }
  }
  ASSERT_TRUE(sync_selected.has_value());

  async_sampler.drain();
  const auto async_selected = async_sampler.poll_selection();
  ASSERT_TRUE(async_selected.has_value());
  EXPECT_EQ(*async_selected, *sync_selected);
  EXPECT_EQ(async_sampler.bursts_completed(), 1u);
  expect_same_analysis(async_sampler.last_mrc(), sync_sampler.last_mrc(),
                       async_sampler.last_selection(),
                       sync_sampler.last_selection());
}

TEST(AsyncSampler, MultiBurstEquivalenceWithHibernation) {
  auto config = sampler_config(300, false);
  config.hibernation_length = 150;
  BurstSampler sync_sampler(config);
  config.async_analysis = true;
  BurstSampler async_sampler(config);

  int bursts_seen = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    // Shifting working set so consecutive bursts select different sizes.
    const LineAddr line = static_cast<LineAddr>(i % (8 + 4 * (i / 1000)));
    const auto sync_sel = sync_sampler.on_store(line);
    EXPECT_FALSE(async_sampler.on_store(line).has_value());
    if (sync_sel) {
      // The sync path just finished a burst, so the async path just handed
      // the identical burst off. Drain before continuing so both samplers
      // leave hibernation at the same write index.
      async_sampler.drain();
      const auto async_sel = async_sampler.poll_selection();
      ASSERT_TRUE(async_sel.has_value());
      EXPECT_EQ(*async_sel, *sync_sel);
      expect_same_analysis(async_sampler.last_mrc(), sync_sampler.last_mrc(),
                           async_sampler.last_selection(),
                           sync_sampler.last_selection());
      ++bursts_seen;
    }
    if (i % 64 == 63) {
      sync_sampler.on_fase_boundary();
      async_sampler.on_fase_boundary();
    }
  }
  EXPECT_GE(bursts_seen, 3);
  EXPECT_EQ(async_sampler.bursts_completed(),
            sync_sampler.bursts_completed());
}

TEST(AsyncSampler, PollIsEmptyInSyncMode) {
  BurstSampler sampler(sampler_config(100, false));
  for (int i = 0; i < 250; ++i) {
    sampler.on_store(static_cast<LineAddr>(i % 5));
    EXPECT_FALSE(sampler.poll_selection().has_value());
  }
  EXPECT_FALSE(sampler.analysis_in_flight());
  sampler.drain();  // no-op, must not block
}

TEST(AsyncSampler, BurstEndDoesNotBlockOnStore) {
  // The handoff is O(1): the store completing the burst returns before the
  // analysis finishes, so the selection cannot be visible yet without a
  // drain. (micro_gbench measures the latency itself.)
  BurstSampler sampler(sampler_config(1 << 14, true));
  for (std::uint64_t i = 0; i < (1u << 14); ++i) {
    EXPECT_FALSE(sampler.on_store(static_cast<LineAddr>(i % 500)).has_value());
  }
  EXPECT_FALSE(sampler.sampling());  // burst over, hibernating
  sampler.drain();
  EXPECT_TRUE(sampler.poll_selection().has_value());
}

TEST(AsyncSampler, HibernationReEnableReReservesTraceBuffer) {
  for (const bool async : {false, true}) {
    auto config = sampler_config(128, async);
    config.hibernation_length = 64;
    BurstSampler sampler(config);
    EXPECT_GE(sampler.trace_capacity(), 128u);
    for (int i = 0; i < 128; ++i) {
      sampler.on_store(static_cast<LineAddr>(i % 6));
    }
    // Burst over: the buffer was shrunk (sync) or moved into the channel
    // (async) — either way the capacity is gone.
    EXPECT_EQ(sampler.trace_capacity(), 0u) << "async=" << async;
    sampler.drain();
    for (int i = 0; i < 64; ++i) {
      sampler.on_store(static_cast<LineAddr>(i % 6));
    }
    // Sampling re-enabled: the full burst reservation must be back so the
    // new burst does not re-grow through repeated reallocation.
    EXPECT_TRUE(sampler.sampling()) << "async=" << async;
    EXPECT_GE(sampler.trace_capacity(), 128u) << "async=" << async;
  }
}

// --- SoftCachePolicy deferred resize -----------------------------------------

PolicyConfig policy_config(std::uint64_t burst, bool async) {
  PolicyConfig config;
  config.sampler = sampler_config(burst, async);
  return config;
}

// Expected post-burst size from an identically driven synchronous policy.
std::size_t sync_selected_size(std::uint64_t burst) {
  SoftCachePolicy policy(policy_config(burst, false), /*online=*/true);
  CountingSink sink;
  for (std::uint64_t i = 0; i < burst; ++i) {
    policy.on_store(static_cast<LineAddr>(i % 12), sink);
  }
  return policy.current_cache_size();
}

TEST(AsyncPolicy, DefersResizeToNextFaseEnd) {
  constexpr std::uint64_t kBurst = 600;
  const std::size_t expected = sync_selected_size(kBurst);
  ASSERT_NE(expected, WriteCache::kDefaultCapacity)
      << "workload must actually change the size for this test to bite";

  SoftCachePolicy policy(policy_config(kBurst, true), /*online=*/true);
  CountingSink sink;
  policy.on_fase_begin(sink);
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    policy.on_store(static_cast<LineAddr>(i % 12), sink);
  }
  // Burst handed off: the old size stays, even once the analysis result has
  // landed, until the policy crosses a FASE boundary.
  EXPECT_EQ(policy.current_cache_size(), WriteCache::kDefaultCapacity);
  policy.drain_analysis();
  EXPECT_FALSE(policy.sampler().analysis_in_flight());
  EXPECT_EQ(policy.current_cache_size(), WriteCache::kDefaultCapacity);

  policy.on_fase_end(sink);
  EXPECT_EQ(policy.current_cache_size(), expected);
}

TEST(AsyncPolicy, AppliesAtFaseBeginToo) {
  constexpr std::uint64_t kBurst = 600;
  const std::size_t expected = sync_selected_size(kBurst);

  SoftCachePolicy policy(policy_config(kBurst, true), /*online=*/true);
  CountingSink sink;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    policy.on_store(static_cast<LineAddr>(i % 12), sink);
  }
  policy.drain_analysis();
  EXPECT_EQ(policy.current_cache_size(), WriteCache::kDefaultCapacity);
  policy.on_fase_begin(sink);
  EXPECT_EQ(policy.current_cache_size(), expected);
}

TEST(AsyncPolicy, FinishDrainsInFlightAnalysis) {
  constexpr std::uint64_t kBurst = 600;
  const std::size_t expected = sync_selected_size(kBurst);

  SoftCachePolicy policy(policy_config(kBurst, true), /*online=*/true);
  CountingSink sink;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    policy.on_store(static_cast<LineAddr>(i % 12), sink);
  }
  // Shutdown immediately after the burst handoff: finish() must wait for the
  // background analysis and apply its selection rather than dropping it.
  policy.finish(sink);
  EXPECT_EQ(policy.current_cache_size(), expected);
  EXPECT_EQ(policy.sampler().bursts_completed(), 1u);
}

TEST(AsyncPolicy, SyncAndAsyncConvergeOnIdenticalRuns) {
  // Full end-to-end equivalence: same stores, same FASE structure; after the
  // final boundary both modes run with the same cache size and have seen the
  // same number of bursts.
  constexpr std::uint64_t kStores = 4000;
  auto run = [](bool async) {
    auto config = policy_config(500, async);
    config.sampler.hibernation_length = 250;
    SoftCachePolicy policy(config, /*online=*/true);
    CountingSink sink;
    for (std::uint64_t i = 0; i < kStores; ++i) {
      policy.on_fase_begin(sink);
      for (int j = 0; j < 40; ++j) {
        policy.on_store(static_cast<LineAddr>((i * 40 + j) % 15), sink);
      }
      policy.on_fase_end(sink);
      if (async) policy.drain_analysis();  // keep burst alignment exact
    }
    policy.finish(sink);
    return std::pair{policy.current_cache_size(),
                     policy.sampler().bursts_completed()};
  };
  const auto [sync_size, sync_bursts] = run(false);
  const auto [async_size, async_bursts] = run(true);
  EXPECT_EQ(async_size, sync_size);
  EXPECT_EQ(async_bursts, sync_bursts);
  EXPECT_GE(sync_bursts, 2u);
}

}  // namespace
}  // namespace nvc::core
