// Unit tests for the persistent-memory substrate: flush backends, mmap
// regions, the persistent allocator, and the shadow crash model.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unistd.h>

#include "common/types.hpp"
#include "pmem/flush.hpp"
#include "pmem/pmem_alloc.hpp"
#include "pmem/pmem_region.hpp"
#include "pmem/shadow.hpp"

namespace nvc::pmem {
namespace {

std::string unique_name(const char* base) {
  static int counter = 0;
  return std::string(base) + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

// --- FlushBackend ---------------------------------------------------------------

TEST(FlushBackend, CountsFlushesAndFences) {
  FlushBackend b(FlushKind::kCountOnly);
  int data[64] = {};
  b.flush(&data[0]);
  b.flush(&data[32]);
  b.fence();
  EXPECT_EQ(b.flush_count(), 2u);
  EXPECT_EQ(b.fence_count(), 1u);
  b.reset_counters();
  EXPECT_EQ(b.flush_count(), 0u);
}

TEST(FlushBackend, FlushRangeCoversEveryLine) {
  FlushBackend b(FlushKind::kCountOnly);
  alignas(64) char buf[64 * 4] = {};
  b.flush_range(buf, sizeof buf);
  EXPECT_EQ(b.flush_count(), 4u);
  b.reset_counters();
  // A 1-byte range still needs one flush.
  b.flush_range(buf, 1);
  EXPECT_EQ(b.flush_count(), 1u);
  b.reset_counters();
  // A range straddling a line boundary needs two.
  b.flush_range(buf + 60, 8);
  EXPECT_EQ(b.flush_count(), 2u);
  b.reset_counters();
  b.flush_range(buf, 0);
  EXPECT_EQ(b.flush_count(), 0u);
}

TEST(FlushBackend, RealInstructionsExecuteWhenSupported) {
  // Whichever hardware kind is available must execute without faulting on
  // ordinary memory (DRAM emulation, as in the paper).
  alignas(64) volatile char buf[64] = {};
  for (FlushKind kind : {FlushKind::kClflush, FlushKind::kClflushopt,
                         FlushKind::kClwb, FlushKind::kSimulated}) {
    FlushBackend b(kind, /*simulated_latency_ns=*/10);
    buf[0] = 1;
    b.flush(const_cast<const char*>(buf));
    b.fence();
    EXPECT_EQ(b.flush_count(), 1u);
  }
}

TEST(FlushBackend, UnsupportedKindDowngradesToSimulated) {
  // kCountOnly and kSimulated never downgrade; hardware kinds only when the
  // CPU lacks them, which we can't force here — but the constructor must
  // always yield a usable backend.
  FlushBackend b(parse_flush_kind("definitely-not-a-kind"));
  alignas(64) char buf[64] = {};
  b.flush(buf);
  EXPECT_EQ(b.flush_count(), 1u);
}

TEST(FlushBackend, ParseNamesRoundTrip) {
  EXPECT_EQ(parse_flush_kind("clflush"), FlushKind::kClflush);
  EXPECT_EQ(parse_flush_kind("clflushopt"), FlushKind::kClflushopt);
  EXPECT_EQ(parse_flush_kind("clwb"), FlushKind::kClwb);
  EXPECT_EQ(parse_flush_kind("sim"), FlushKind::kSimulated);
  EXPECT_EQ(parse_flush_kind("count"), FlushKind::kCountOnly);
  EXPECT_STREQ(to_string(FlushKind::kClflush), "clflush");
  EXPECT_STREQ(to_string(FlushKind::kCountOnly), "count");
}

// --- PmemRegion -------------------------------------------------------------------

TEST(PmemRegion, CreateWriteReopenPersists) {
  const std::string name = unique_name("region-reopen");
  {
    PmemRegion r = PmemRegion::create(name, 1 << 16);
    ASSERT_TRUE(r.valid());
    std::memcpy(r.base(), "durable!", 8);
    r.sync();
  }  // unmapped; file remains
  ASSERT_TRUE(PmemRegion::exists(name));
  {
    PmemRegion r = PmemRegion::open(name);
    ASSERT_TRUE(r.valid());
    EXPECT_EQ(r.size(), std::size_t{1 << 16});
    EXPECT_EQ(std::memcmp(r.base(), "durable!", 8), 0);
    r.close_and_destroy();
  }
  EXPECT_FALSE(PmemRegion::exists(name));
}

TEST(PmemRegion, OffsetPointerRoundTrip) {
  const std::string name = unique_name("region-offset");
  PmemRegion r = PmemRegion::create(name, 1 << 16);
  char* p = static_cast<char*>(r.base()) + 1234;
  EXPECT_EQ(r.offset_of(p), 1234u);
  EXPECT_EQ(r.at(1234), p);
  EXPECT_TRUE(r.contains(p));
  EXPECT_FALSE(r.contains(&name));
  r.close_and_destroy();
}

TEST(PmemRegion, MoveTransfersOwnership) {
  const std::string name = unique_name("region-move");
  PmemRegion a = PmemRegion::create(name, 1 << 16);
  void* base = a.base();
  PmemRegion b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base(), base);
  b.close_and_destroy();
}

TEST(PmemRegion, OpenMissingThrows) {
  EXPECT_THROW(PmemRegion::open(unique_name("region-missing")),
               std::runtime_error);
}

// --- PmemAllocator -----------------------------------------------------------------

class PmemAllocatorTest : public ::testing::Test {
 protected:
  PmemAllocatorTest()
      : name_(unique_name("alloc")),
        heap_(PmemRegion::create(name_, 1 << 20), /*format=*/true) {}
  ~PmemAllocatorTest() override { PmemRegion::destroy(name_); }

  std::string name_;
  PmemAllocator heap_;
};

TEST_F(PmemAllocatorTest, AllocateGivesDistinctAlignedBlocks) {
  const POffset a = heap_.allocate(100);
  const POffset b = heap_.allocate(100);
  ASSERT_NE(a, kNullOffset);
  ASSERT_NE(b, kNullOffset);
  EXPECT_NE(a, b);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GE(heap_.block_size(a), 100u);
}

TEST_F(PmemAllocatorTest, FreeListReusesBlocks) {
  const POffset a = heap_.allocate(64);
  heap_.deallocate(a);
  const POffset b = heap_.allocate(64);
  EXPECT_EQ(a, b);  // same size class comes back LIFO
}

TEST_F(PmemAllocatorTest, BytesInUseTracksAllocations) {
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  const POffset a = heap_.allocate(100);
  EXPECT_EQ(heap_.bytes_in_use(), 100u);
  const POffset b = heap_.allocate(28);
  EXPECT_EQ(heap_.bytes_in_use(), 128u);
  heap_.deallocate(a);
  EXPECT_EQ(heap_.bytes_in_use(), 28u);
  heap_.deallocate(b);
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
}

TEST_F(PmemAllocatorTest, RootSurvivesReopen) {
  const POffset a = heap_.allocate(64);
  *heap_.resolve<std::uint64_t>(a) = 0xfeedface;
  heap_.set_root(a);

  PmemAllocator reopened(PmemRegion::open(name_), /*format=*/false);
  EXPECT_EQ(reopened.root(), a);
  EXPECT_EQ(*reopened.resolve<std::uint64_t>(reopened.root()), 0xfeedfaceu);
}

TEST_F(PmemAllocatorTest, OpenRejectsUnformattedRegion) {
  const std::string other = unique_name("alloc-raw");
  PmemRegion raw = PmemRegion::create(other, 1 << 16);
  EXPECT_THROW(PmemAllocator(std::move(raw), /*format=*/false),
               std::runtime_error);
  PmemRegion::destroy(other);
}

TEST_F(PmemAllocatorTest, ExhaustionReturnsNull) {
  // Region is 1 MiB; oversized allocations must eventually return null
  // rather than corrupting.
  POffset last = kNullOffset;
  int count = 0;
  for (; count < 64; ++count) {
    last = heap_.allocate(100 * 1024);
    if (last == kNullOffset) break;
  }
  EXPECT_EQ(last, kNullOffset);
  EXPECT_GT(count, 0);
}

TEST_F(PmemAllocatorTest, PayloadsAreCacheLineAligned) {
  // Regression: alignas(64) members in persistent structs (e.g. the queue
  // example's anchors) require line-aligned payloads; misalignment made
  // placement-new UB.
  for (const std::size_t size : {1u, 24u, 64u, 100u, 4096u}) {
    const POffset off = heap_.allocate(size);
    ASSERT_NE(off, kNullOffset);
    const auto addr = reinterpret_cast<std::uintptr_t>(heap_.resolve(off));
    EXPECT_EQ(addr % kCacheLineSize, 0u) << "size " << size;
  }
}

TEST_F(PmemAllocatorTest, RecycledBlocksKeepAlignment) {
  const POffset a = heap_.allocate(128);
  heap_.deallocate(a);
  const POffset b = heap_.allocate(100);  // same size class, recycled
  EXPECT_EQ(a, b);
  const auto addr = reinterpret_cast<std::uintptr_t>(heap_.resolve(b));
  EXPECT_EQ(addr % kCacheLineSize, 0u);
}

TEST_F(PmemAllocatorTest, ZeroByteAllocationIsValid) {
  const POffset a = heap_.allocate(0);
  EXPECT_NE(a, kNullOffset);
  heap_.deallocate(a);
}

// --- ShadowPmem -------------------------------------------------------------------

TEST(ShadowPmem, StoresVisibleOnlyAfterFlush) {
  ShadowPmem mem(4096);
  mem.store_value<int>(128, 42);
  EXPECT_EQ(mem.load_value<int>(128), 42);        // volatile view sees it
  EXPECT_EQ(mem.durable_value<int>(128), 0);       // durable view does not
  mem.flush_addr(128);
  EXPECT_EQ(mem.durable_value<int>(128), 42);
}

TEST(ShadowPmem, CrashDropsUnflushedLines) {
  ShadowPmem mem(4096);
  mem.store_value<int>(0, 1);
  mem.flush_addr(0);
  mem.store_value<int>(64, 2);  // different line, never flushed
  mem.crash();
  EXPECT_EQ(mem.load_value<int>(0), 1);
  EXPECT_EQ(mem.load_value<int>(64), 0);  // lost
  EXPECT_EQ(mem.dirty_line_count(), 0u);
}

TEST(ShadowPmem, LineGranularFlushTakesNeighborsOnSameLine) {
  ShadowPmem mem(4096);
  mem.store_value<int>(0, 7);
  mem.store_value<int>(60, 9);  // same 64B line
  mem.flush_line(0);
  EXPECT_EQ(mem.durable_value<int>(0), 7);
  EXPECT_EQ(mem.durable_value<int>(60), 9);
}

TEST(ShadowPmem, StoreSpanningLinesDirtiesBoth) {
  ShadowPmem mem(4096);
  const std::uint64_t v = 0x1122334455667788ull;
  mem.store(60, &v, sizeof v);  // straddles lines 0 and 1
  EXPECT_TRUE(mem.line_dirty(0));
  EXPECT_TRUE(mem.line_dirty(1));
  mem.flush_line(0);
  mem.flush_line(1);
  EXPECT_EQ(mem.durable_value<std::uint64_t>(60), v);
}

TEST(ShadowPmem, FlushAllPersistsEverything) {
  ShadowPmem mem(4096);
  for (PmAddr a = 0; a < 4096; a += 64) mem.store_value<int>(a, 5);
  EXPECT_EQ(mem.dirty_line_count(), 64u);
  mem.flush_all();
  EXPECT_EQ(mem.dirty_line_count(), 0u);
  mem.crash();
  for (PmAddr a = 0; a < 4096; a += 64) EXPECT_EQ(mem.load_value<int>(a), 5);
}

TEST(ShadowPmem, CountsStoresAndFlushes) {
  ShadowPmem mem(1024);
  mem.store_value<int>(0, 1);
  mem.store_value<int>(4, 2);
  mem.flush_addr(0);
  EXPECT_EQ(mem.stores(), 2u);
  EXPECT_EQ(mem.flushes(), 1u);
}

}  // namespace
}  // namespace nvc::pmem
