// Tests for the MDB copy-on-write B+-tree: correctness against a reference
// map, MVCC snapshot isolation, structural invariants, page recycling, and
// abort semantics.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "mdb/btree.hpp"
#include "mdb/mtest.hpp"
#include "workloads/api.hpp"

namespace nvc::mdb {
namespace {

struct DbHarness {
  DbHarness(std::size_t max_pages = 2048)
      : api(1, 64u << 20), db(api, max_pages) {}
  workloads::TraceApi api;
  Db db;
};

TEST(MdbBasic, PutGetSingle) {
  DbHarness h;
  {
    auto txn = h.db.begin_write(0);
    txn.put(42, 4242);
    txn.commit();
  }
  auto read = h.db.begin_read();
  EXPECT_EQ(read.get(42), std::optional<Value>(4242));
  EXPECT_EQ(read.get(43), std::nullopt);
}

TEST(MdbBasic, OverwriteReplacesValue) {
  DbHarness h;
  {
    auto txn = h.db.begin_write(0);
    txn.put(1, 10);
    txn.put(1, 20);
    txn.commit();
  }
  EXPECT_EQ(h.db.begin_read().get(1), std::optional<Value>(20));
}

TEST(MdbBasic, DeleteRemovesKey) {
  DbHarness h;
  {
    auto txn = h.db.begin_write(0);
    txn.put(5, 50);
    txn.put(6, 60);
    txn.commit();
  }
  {
    auto txn = h.db.begin_write(0);
    EXPECT_TRUE(txn.del(5));
    EXPECT_FALSE(txn.del(99));
    txn.commit();
  }
  auto read = h.db.begin_read();
  EXPECT_EQ(read.get(5), std::nullopt);
  EXPECT_EQ(read.get(6), std::optional<Value>(60));
}

TEST(MdbBasic, EmptyDbReads) {
  DbHarness h;
  auto read = h.db.begin_read();
  EXPECT_EQ(read.get(0), std::nullopt);
  EXPECT_EQ(read.count(), 0u);
  EXPECT_EQ(read.scan(0, 10), 0u);
}

TEST(MdbBasic, WriteTxnSeesOwnWrites) {
  DbHarness h;
  auto txn = h.db.begin_write(0);
  txn.put(7, 70);
  EXPECT_EQ(txn.get(7), std::optional<Value>(70));
  txn.commit();
}

TEST(MdbBasic, AbortDiscardsChanges) {
  DbHarness h;
  {
    auto txn = h.db.begin_write(0);
    txn.put(1, 100);
    txn.commit();
  }
  {
    auto txn = h.db.begin_write(0);
    txn.put(1, 999);
    txn.put(2, 222);
    txn.abort();
  }
  auto read = h.db.begin_read();
  EXPECT_EQ(read.get(1), std::optional<Value>(100));
  EXPECT_EQ(read.get(2), std::nullopt);
}

TEST(MdbBasic, DestructorWithoutCommitAborts) {
  DbHarness h;
  {
    auto txn = h.db.begin_write(0);
    txn.put(9, 90);
    // No commit: destructor must abort and release the writer lock.
  }
  EXPECT_EQ(h.db.begin_read().get(9), std::nullopt);
  // The writer lock must be free again.
  auto txn = h.db.begin_write(0);
  txn.commit();
}

// --- splits and bulk correctness -------------------------------------------------------

TEST(MdbBulk, ManyInsertsSplitLeavesAndMatchReference) {
  DbHarness h(4096);
  std::map<Key, Value> reference;
  Rng rng(2);
  for (int batch = 0; batch < 100; ++batch) {
    auto txn = h.db.begin_write(0);
    for (int i = 0; i < 50; ++i) {
      const Key k = rng.below(100000);
      txn.put(k, k + 1);
      reference[k] = k + 1;
    }
    txn.commit();
  }
  h.db.check_invariants();
  EXPECT_GT(h.db.stats().page_allocs, 10u);  // splits happened

  auto read = h.db.begin_read();
  EXPECT_EQ(read.count(), reference.size());
  Rng probe(3);
  for (int i = 0; i < 2000; ++i) {
    const Key k = probe.below(100000);
    const auto it = reference.find(k);
    const auto got = read.get(k);
    if (it == reference.end()) {
      EXPECT_EQ(got, std::nullopt) << k;
    } else {
      EXPECT_EQ(got, std::optional<Value>(it->second)) << k;
    }
  }
}

TEST(MdbBulk, SequentialInsertsProduceSortedScan) {
  DbHarness h(4096);
  {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 2000; ++k) txn.put(k * 3, k);
    txn.commit();
  }
  h.db.check_invariants();
  std::vector<Key> seen;
  auto collect = [](Key k, Value, void* arg) {
    static_cast<std::vector<Key>*>(arg)->push_back(k);
  };
  auto read = h.db.begin_read();
  EXPECT_EQ(read.scan(0, 5000, collect, &seen), 2000u);
  ASSERT_EQ(seen.size(), 2000u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST(MdbBulk, ScanFromMidRange) {
  DbHarness h(4096);
  {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 1000; ++k) txn.put(k, k);
    txn.commit();
  }
  std::vector<Key> seen;
  auto collect = [](Key k, Value, void* arg) {
    static_cast<std::vector<Key>*>(arg)->push_back(k);
  };
  auto read = h.db.begin_read();
  EXPECT_EQ(read.scan(500, 10, collect, &seen), 10u);
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 500u);
  EXPECT_EQ(seen.back(), 509u);
}

TEST(MdbBulk, MixedWorkloadAgainstReference) {
  DbHarness h(4096);
  std::map<Key, Value> reference;
  Rng rng(11);
  for (int round = 0; round < 300; ++round) {
    auto txn = h.db.begin_write(0);
    for (int op = 0; op < 8; ++op) {
      const double roll = rng.uniform();
      const Key k = rng.below(3000);
      if (roll < 0.7) {
        txn.put(k, k * 7);
        reference[k] = k * 7;
      } else {
        const bool was_in_db = txn.del(k);
        EXPECT_EQ(was_in_db, reference.erase(k) > 0) << "key " << k;
      }
    }
    txn.commit();
  }
  h.db.check_invariants();
  auto read = h.db.begin_read();
  EXPECT_EQ(read.count(), reference.size());
}

// --- MVCC snapshots ----------------------------------------------------------------------

TEST(MdbMvcc, ReaderSeesSnapshotNotLaterWrites) {
  DbHarness h;
  {
    auto txn = h.db.begin_write(0);
    txn.put(1, 100);
    txn.commit();
  }
  auto old_reader = h.db.begin_read();  // snapshot at txn 1
  {
    auto txn = h.db.begin_write(0);
    txn.put(1, 200);
    txn.put(2, 2);
    txn.commit();
  }
  EXPECT_EQ(old_reader.get(1), std::optional<Value>(100));
  EXPECT_EQ(old_reader.get(2), std::nullopt);
  auto new_reader = h.db.begin_read();
  EXPECT_EQ(new_reader.get(1), std::optional<Value>(200));
}

TEST(MdbMvcc, LiveReaderBlocksPageReuseForItsSnapshot) {
  DbHarness h(4096);
  {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 500; ++k) txn.put(k, 1);
    txn.commit();
  }
  auto reader = h.db.begin_read();  // pin the snapshot
  // Heavy churn: without the reader check these commits would recycle the
  // reader's pages and corrupt its view.
  for (int round = 0; round < 50; ++round) {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 100; ++k) txn.put(k, round);
    txn.commit();
  }
  // The pinned snapshot must still read value 1 everywhere.
  for (Key k = 0; k < 500; k += 37) {
    ASSERT_EQ(reader.get(k), std::optional<Value>(1)) << k;
  }
}

TEST(MdbMvcc, PagesRecycledAfterReadersFinish) {
  DbHarness h(4096);
  for (int round = 0; round < 200; ++round) {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 64; ++k) txn.put(k, round);
    txn.commit();
  }
  // 200 rounds of COW on a small tree: without recycling this would need
  // hundreds of fresh pages; with it the footprint stays near the live set.
  EXPECT_GT(h.db.stats().page_reuses, 100u);
  EXPECT_LT(h.db.pages_in_use(), 64u);
}

TEST(MdbMvcc, ConcurrentReadersDuringWrites) {
  DbHarness h(4096);
  {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 1000; ++k) txn.put(k, k);
    txn.commit();
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread reader_thread([&] {
    while (!stop.load()) {
      auto read = h.db.begin_read();
      // Every snapshot must be internally consistent: all present or
      // shifted by a full committed batch, never torn.
      const auto v0 = read.get(0);   // = round of the snapshot's commit
      const auto v999 = read.get(999);
      if (!v0 || !v999 || (*v999 - *v0 != 999)) failed = true;
    }
  });
  for (int round = 1; round <= 100; ++round) {
    auto txn = h.db.begin_write(0);
    for (Key k = 0; k < 1000; ++k) txn.put(k, k + round);
    txn.commit();
  }
  stop = true;
  reader_thread.join();
  EXPECT_FALSE(failed.load());
}

// --- persistence accounting ----------------------------------------------------------------

TEST(MdbPersistence, EveryCommitIsOneFase) {
  DbHarness h;
  for (int i = 0; i < 10; ++i) {
    auto txn = h.db.begin_write(0);
    txn.put(static_cast<Key>(i), 1);
    txn.commit();
  }
  // DbHarness construction runs one formatting FASE.
  EXPECT_EQ(h.api.trace(0).fase_count, 11u);
}

TEST(MdbPersistence, CowCopiesScaleWithLiveContent) {
  // COW traffic is reported at store granularity over the node's used
  // region, so copying a nearly-full leaf reports far more stores than
  // copying a nearly-empty one.
  DbHarness small;
  {
    auto txn = small.db.begin_write(0);
    txn.put(1, 1);
    txn.commit();
  }
  const auto before_small = small.api.trace(0).store_count;
  {
    auto txn = small.db.begin_write(0);
    txn.put(2, 2);  // COW of a 1-entry leaf
    txn.commit();
  }
  const auto delta_small = small.api.trace(0).store_count - before_small;

  DbHarness big;
  {
    auto txn = big.db.begin_write(0);
    for (Key k = 0; k < 200; ++k) txn.put(k, k);  // one fat leaf
    txn.commit();
  }
  const auto before_big = big.api.trace(0).store_count;
  {
    auto txn = big.db.begin_write(0);
    txn.put(500, 1);  // COW of a 200-entry leaf: ~400 word stores
    txn.commit();
  }
  const auto delta_big = big.api.trace(0).store_count - before_big;

  EXPECT_GE(delta_small, 4u);
  EXPECT_GE(delta_big, 20 * delta_small);
}

TEST(Mtest, WorkloadRunsAndReportsName) {
  auto w = make_mdb_workload();
  EXPECT_EQ(w->name(), "mdb");
  workloads::WorkloadParams p;
  p.threads = 2;
  p.full = false;
  workloads::TraceApi api(p.threads, 128u << 20);
  MtestConfig config;
  config.inserts_quick = 4000;
  auto small = make_mdb_workload(config);
  small->run(api, p);
  EXPECT_GT(api.total_stores(), 10000u);  // COW page traffic dominates
}

}  // namespace
}  // namespace nvc::mdb
