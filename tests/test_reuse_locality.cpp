// Tests for the reuse-based timescale locality theory (paper Section III-B):
// the linear-time all-k reuse algorithm against brute force, the footprint
// formula against brute force, and the duality reuse(k) + fp(k) = k (Eq. 5).
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/reuse_locality.hpp"
#include "testing/seed.hpp"

namespace nvc::core {
namespace {

using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

std::vector<LineAddr> trace_of(std::initializer_list<int> xs) {
  std::vector<LineAddr> t;
  for (int x : xs) t.push_back(static_cast<LineAddr>(x));
  return t;
}

// --- intervals_of_trace ------------------------------------------------------------

TEST(Intervals, ExtractsConsecutivePairs) {
  // trace a b a a  (1-indexed times)
  const auto trace = trace_of({7, 8, 7, 7});
  const auto ivs = intervals_of_trace(trace);
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0].s, 1u);
  EXPECT_EQ(ivs[0].e, 3u);
  EXPECT_EQ(ivs[1].s, 3u);
  EXPECT_EQ(ivs[1].e, 4u);
}

TEST(Intervals, NoReusesNoIntervals) {
  EXPECT_TRUE(intervals_of_trace(trace_of({1, 2, 3, 4})).empty());
}

// --- reuse(k) -----------------------------------------------------------------------

TEST(Reuse, PaperAbbExample) {
  // Paper Section III-B: trace "abb" has reuse(2) = 1/2.
  const auto trace = trace_of({1, 2, 2});
  const auto r = compute_reuse_all_k(intervals_of_trace(trace), 3);
  EXPECT_DOUBLE_EQ(r.at(1), 0.0);
  EXPECT_DOUBLE_EQ(r.at(2), 0.5);
  EXPECT_DOUBLE_EQ(r.at(3), 1.0);
}

TEST(Reuse, PaperAbabTable) {
  // Paper's "abab..." table: reuse(1)=0, reuse(2)=0, reuse(3)=1, reuse(4)=2.
  // For a finite trace the values are window averages, so use a long trace
  // and check the interior behavior via the brute-force reference instead;
  // here check the exact finite-trace values on "abababab".
  const auto trace = trace_of({1, 2, 1, 2, 1, 2, 1, 2});
  const auto n = static_cast<LogicalTime>(trace.size());
  const auto fast = compute_reuse_all_k(intervals_of_trace(trace), n);
  const auto slow = compute_reuse_brute_force(intervals_of_trace(trace), n);
  for (LogicalTime k = 1; k <= n; ++k) {
    EXPECT_NEAR(fast.at(k), slow.at(k), 1e-12) << "k=" << k;
  }
  EXPECT_DOUBLE_EQ(fast.at(1), 0.0);
  EXPECT_DOUBLE_EQ(fast.at(2), 0.0);
  // Window of 3 always holds exactly one reuse interval: aba or bab.
  EXPECT_DOUBLE_EQ(fast.at(3), 1.0);
  EXPECT_DOUBLE_EQ(fast.at(4), 2.0);
}

TEST(Reuse, AllSameAddress) {
  // "aaaa": every window of length k has k-1 reuses.
  const auto trace = trace_of({3, 3, 3, 3});
  const auto r = compute_reuse_all_k(intervals_of_trace(trace), 4);
  for (LogicalTime k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(r.at(k), static_cast<double>(k - 1)) << "k=" << k;
  }
}

TEST(Reuse, SingleAccessTrace) {
  const auto trace = trace_of({42});
  const auto r = compute_reuse_all_k(intervals_of_trace(trace), 1);
  EXPECT_DOUBLE_EQ(r.at(1), 0.0);
}

TEST(Reuse, MonotoneNondecreasingInK) {
  const std::uint64_t seed = seed_from_env("NVC_SEED", 2024);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 300; ++i) trace.push_back(rng.below(20));
  const auto n = static_cast<LogicalTime>(trace.size());
  const auto r = compute_reuse_all_k(intervals_of_trace(trace), n);
  for (LogicalTime k = 1; k < n; ++k) {
    EXPECT_LE(r.at(k), r.at(k + 1) + 1e-9);
  }
}

TEST(Reuse, DerivativeBoundedByOne) {
  // reuse(k+1) - reuse(k) is a hit ratio (Eq. 3): it must lie in [0, 1].
  const std::uint64_t seed = seed_from_env("NVC_SEED", 77);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 400; ++i) trace.push_back(rng.below(13));
  const auto n = static_cast<LogicalTime>(trace.size());
  const auto r = compute_reuse_all_k(intervals_of_trace(trace), n);
  for (LogicalTime k = 1; k < n; ++k) {
    const double d = r.at(k + 1) - r.at(k);
    EXPECT_GE(d, -1e-9);
    EXPECT_LE(d, 1.0 + 1e-9);
  }
}

// --- footprint ------------------------------------------------------------------------

TEST(Footprint, SimpleTraces) {
  {
    const auto t = trace_of({1, 1, 1});
    const auto fp = compute_footprint_all_k(t);
    EXPECT_DOUBLE_EQ(fp.at(1), 1.0);
    EXPECT_DOUBLE_EQ(fp.at(2), 1.0);
    EXPECT_DOUBLE_EQ(fp.at(3), 1.0);
  }
  {
    const auto t = trace_of({1, 2, 3});
    const auto fp = compute_footprint_all_k(t);
    EXPECT_DOUBLE_EQ(fp.at(1), 1.0);
    EXPECT_DOUBLE_EQ(fp.at(2), 2.0);
    EXPECT_DOUBLE_EQ(fp.at(3), 3.0);
  }
  {
    // "aab": windows of 2 are {aa}, {ab} -> avg wss 1.5.
    const auto t = trace_of({1, 1, 2});
    const auto fp = compute_footprint_all_k(t);
    EXPECT_DOUBLE_EQ(fp.at(2), 1.5);
  }
}

TEST(Footprint, BoundedByDistinctData) {
  const std::uint64_t seed = seed_from_env("NVC_SEED", 31);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 200; ++i) trace.push_back(rng.below(9));
  const auto fp = compute_footprint_all_k(trace);
  for (LogicalTime k = 1; k <= 200; ++k) {
    EXPECT_LE(fp.at(k), 9.0 + 1e-9);
    EXPECT_GE(fp.at(k), 1.0 - 1e-9);
  }
}

// --- parameterized property sweeps ------------------------------------------------------

struct LocalityCase {
  std::uint64_t seed;
  std::size_t length;
  std::size_t distinct;
  const char* pattern;  // "random", "sequential", "strided", "zipf-ish"
};

std::vector<LineAddr> synthesize(const LocalityCase& c) {
  Rng rng(c.seed);
  std::vector<LineAddr> trace;
  trace.reserve(c.length);
  for (std::size_t i = 0; i < c.length; ++i) {
    if (std::string_view(c.pattern) == "sequential") {
      trace.push_back(i % c.distinct);
    } else if (std::string_view(c.pattern) == "strided") {
      trace.push_back((i * 7) % c.distinct);
    } else if (std::string_view(c.pattern) == "zipf-ish") {
      // Square a uniform to bias toward small addresses.
      const double u = rng.uniform();
      trace.push_back(static_cast<LineAddr>(u * u * c.distinct));
    } else {
      trace.push_back(rng.below(c.distinct));
    }
  }
  return trace;
}

/// The case actually run: NVC_SEED, when set, re-seeds every case of the
/// sweep (the trace generator stays per-pattern, only the seed changes).
LocalityCase effective(LocalityCase c) {
  c.seed = seed_from_env("NVC_SEED", c.seed);
  return c;
}

class LocalityProperty : public ::testing::TestWithParam<LocalityCase> {};

TEST_P(LocalityProperty, FastReuseMatchesBruteForce) {
  const LocalityCase c = effective(GetParam());
  SCOPED_TRACE(replay_hint("NVC_SEED", c.seed));
  const auto trace = synthesize(c);
  const auto n = static_cast<LogicalTime>(trace.size());
  const auto ivs = intervals_of_trace(trace);
  const auto fast = compute_reuse_all_k(ivs, n);
  const auto slow = compute_reuse_brute_force(ivs, n);
  for (LogicalTime k = 1; k <= n; ++k) {
    ASSERT_NEAR(fast.at(k), slow.at(k), 1e-9)
        << "k=" << k << " pattern=" << GetParam().pattern;
  }
}

TEST_P(LocalityProperty, FastFootprintMatchesBruteForce) {
  const LocalityCase c = effective(GetParam());
  SCOPED_TRACE(replay_hint("NVC_SEED", c.seed));
  const auto trace = synthesize(c);
  const auto fast = compute_footprint_all_k(trace);
  const auto slow = compute_footprint_brute_force(trace);
  for (LogicalTime k = 1; k <= trace.size(); ++k) {
    ASSERT_NEAR(fast.at(k), slow.at(k), 1e-9)
        << "k=" << k << " pattern=" << GetParam().pattern;
  }
}

TEST_P(LocalityProperty, DualityReusePlusFootprintEqualsK) {
  // Paper Eq. 5: reuse(k) + fp(k) = k for every timescale k.
  const LocalityCase c = effective(GetParam());
  SCOPED_TRACE(replay_hint("NVC_SEED", c.seed));
  const auto trace = synthesize(c);
  const auto n = static_cast<LogicalTime>(trace.size());
  const auto reuse = compute_reuse_all_k(intervals_of_trace(trace), n);
  const auto fp = compute_footprint_all_k(trace);
  for (LogicalTime k = 1; k <= n; ++k) {
    ASSERT_NEAR(reuse.at(k) + fp.at(k), static_cast<double>(k), 1e-9)
        << "k=" << k << " pattern=" << GetParam().pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalityProperty,
    ::testing::Values(LocalityCase{11, 60, 5, "random"},
                      LocalityCase{12, 100, 10, "random"},
                      LocalityCase{13, 150, 3, "random"},
                      LocalityCase{14, 120, 8, "sequential"},
                      LocalityCase{15, 90, 11, "strided"},
                      LocalityCase{16, 130, 20, "zipf-ish"},
                      LocalityCase{17, 200, 40, "random"},
                      LocalityCase{18, 64, 64, "sequential"},
                      LocalityCase{19, 100, 1, "random"},
                      LocalityCase{20, 175, 25, "zipf-ish"}));

// --- scaling sanity -----------------------------------------------------------------

TEST(Reuse, LinearAlgorithmHandlesLargeTraces) {
  // 1M accesses must complete quickly (the brute force would need ~10^12
  // steps); this guards against accidental quadratic regressions.
  const std::uint64_t seed = seed_from_env("NVC_SEED", 5);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  trace.reserve(1u << 20);
  for (std::size_t i = 0; i < (1u << 20); ++i) trace.push_back(rng.below(64));
  const auto n = static_cast<LogicalTime>(trace.size());
  const auto r = compute_reuse_all_k(intervals_of_trace(trace), n);
  // With 64 hot lines, almost every access is a reuse at large k.
  EXPECT_GT(r.at(n), static_cast<double>(n) - 70.0);
  EXPECT_DOUBLE_EQ(r.at(1), 0.0);
}

}  // namespace
}  // namespace nvc::core
