// Unit tests for the common utility layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/barrier.hpp"
#include "common/env.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "testing/seed.hpp"

namespace nvc {
namespace {

using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

TEST(Types, LineConversionRoundTrips) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(line_base(line_of(12345)), 12345u & ~63u);
}

TEST(Types, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(7, 8), 8u);
}

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Types, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(64), 6u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Log2Histogram, BucketsByMagnitude) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // value 1
  EXPECT_EQ(h.bucket(2), 2u);  // values 2..3
  EXPECT_EQ(h.bucket(11), 1u); // 1024
}

TEST(MeanSummary, ArithmeticAndGeometric) {
  const auto s = summarize_means({1.0, 4.0});
  EXPECT_DOUBLE_EQ(s.arithmetic, 2.5);
  EXPECT_DOUBLE_EQ(s.geometric, 2.0);
}

TEST(TablePrinter, FormattersProduceCanonicalStrings) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_ratio(2.936), "2.94x");
  EXPECT_EQ(TablePrinter::fmt_percent(0.8321), "83.21%");
  EXPECT_EQ(TablePrinter::fmt_count(12345), "12345");
}

TEST(TablePrinter, PrintsAlignedRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  // Smoke: printing to a memstream must not crash and must contain cells.
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread of phase p has incremented.
        if (phase_counter.load() < (p + 1) * static_cast<int>(kThreads)) {
          failed = true;
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(phase_counter.load(), kPhases * static_cast<int>(kThreads));
}

TEST(ThreadTeam, RunsEveryTidExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  ThreadTeam::run(8, [&](std::size_t tid) { hits[tid].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Env, IntFallbacks) {
  ::unsetenv("NVC_TEST_UNSET");
  EXPECT_EQ(env_int("NVC_TEST_UNSET", 42), 42);
  ::setenv("NVC_TEST_SET", "17", 1);
  EXPECT_EQ(env_int("NVC_TEST_SET", 0), 17);
  ::setenv("NVC_TEST_BAD", "abc", 1);
  EXPECT_EQ(env_int("NVC_TEST_BAD", 9), 9);
}

TEST(FlatHashMap, InsertFindUpdate) {
  FlatHashMap<std::uint64_t, int> map;
  auto [v1, inserted1] = map.try_emplace(42, 7);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, 7);
  auto [v2, inserted2] = map.try_emplace(42, 99);
  EXPECT_FALSE(inserted2);      // key present: value kept
  EXPECT_EQ(*v2, 7);
  *v2 = 13;                     // slot pointer is writable
  EXPECT_EQ(*map.find(42), 13);
  EXPECT_EQ(map.find(43), nullptr);
  EXPECT_TRUE(map.contains(42));
  EXPECT_FALSE(map.contains(0));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, GrowsKeepingEveryEntry) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t k = 0; k < kN; ++k) map.try_emplace(k, k * 3);
  EXPECT_EQ(map.size(), kN);
  EXPECT_TRUE(is_pow2(map.slot_count()));
  EXPECT_GE(map.slot_count(), 2 * kN);  // load factor stays <= 0.5
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * 3);
  }
}

TEST(FlatHashMap, ReserveAvoidsRehash) {
  FlatHashMap<std::uint64_t, int> map;
  map.reserve(1000);
  const std::size_t slots = map.slot_count();
  for (std::uint64_t k = 0; k < 1000; ++k) map.try_emplace(k, 1);
  EXPECT_EQ(map.slot_count(), slots);
}

TEST(FlatHashMap, EraseKeepsRemainingEntriesReachable) {
  // Backward-shift deletion: removing from the middle of probe chains must
  // not strand any surviving entry behind an empty slot.
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t k = 0; k < kN; ++k) map.try_emplace(k, k);
  for (std::uint64_t k = 0; k < kN; k += 2) EXPECT_TRUE(map.erase(k));
  EXPECT_FALSE(map.erase(0));  // already gone
  EXPECT_EQ(map.size(), kN / 2);
  for (std::uint64_t k = 0; k < kN; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(map.contains(k)) << k;
    } else {
      ASSERT_NE(map.find(k), nullptr) << k;
      EXPECT_EQ(*map.find(k), k);
    }
  }
}

TEST(FlatHashMap, CollisionHeavyKeysStayRetrievable) {
  // Low-entropy keys (identical low bits, huge strides) are exactly what the
  // murmur finalizer must spread; every key must survive growth and lookups.
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    keys.push_back(i << 40);       // only high bits differ
    keys.push_back(i * 4096);      // page-aligned stride
    keys.push_back(i * 0x10001);   // mixed
  }
  for (const auto k : keys) map.try_emplace(k, k ^ 0xabcdef);
  EXPECT_EQ(map.size(), keys.size());
  for (const auto k : keys) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k ^ 0xabcdef);
  }
}

TEST(FlatHashMap, RandomizedMatchesUnorderedMap) {
  // Insert/erase/lookup fuzz against the reference container, on a small key
  // range so probe chains constantly form and break.
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  const std::uint64_t seed = seed_from_env("NVC_SEED", 123);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t key = rng.below(512);
    switch (rng.below(3)) {
      case 0: {
        const std::uint64_t value = rng();
        const auto [slot, inserted] = map.try_emplace(key, value);
        const auto [it, ref_inserted] = ref.try_emplace(key, value);
        ASSERT_EQ(inserted, ref_inserted);
        ASSERT_EQ(*slot, it->second);
        break;
      }
      case 1:
        ASSERT_EQ(map.erase(key), ref.erase(key) == 1);
        break;
      default: {
        const auto* found = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
}

TEST(FlatHashMap, RandomizedFullStateParityUnderRehash) {
  // Stronger property sweep: on top of insert/erase/lookup, randomly force
  // growth rehashes (reserve), clear both maps, and shift the hot key range
  // between phases so probe chains are rebuilt from scratch mid-run. After
  // every phase the ENTIRE state must match the reference — checked in both
  // directions via for_each (no extra, no missing, no stale values).
  const std::uint64_t seed = seed_from_env("NVC_SEED", 2468);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int phase = 0; phase < 40; ++phase) {
    // Each phase works a different 256-key window; windows overlap so some
    // erases hit keys inserted many phases ago.
    const std::uint64_t base = rng.below(16) * 128;
    for (int op = 0; op < 600; ++op) {
      const std::uint64_t key = base + rng.below(256);
      if (rng.chance(0.55)) {
        const std::uint64_t value = rng();
        const auto [slot, inserted] = map.try_emplace(key, value);
        const auto [it, ref_inserted] = ref.try_emplace(key, value);
        ASSERT_EQ(inserted, ref_inserted) << "key " << key;
        ASSERT_EQ(*slot, it->second) << "key " << key;
      } else {
        ASSERT_EQ(map.erase(key), ref.erase(key) == 1) << "key " << key;
      }
    }
    if (rng.chance(0.2)) {
      // Grow well past the current population: every surviving entry must
      // land reachable in the new slot array.
      map.reserve(map.size() * 2 + 64);
    }
    if (rng.chance(0.05)) {
      map.clear();
      ref.clear();
    }
    ASSERT_EQ(map.size(), ref.size()) << "phase " << phase;
    std::size_t visited = 0;
    map.for_each([&](std::uint64_t key, std::uint64_t value) {
      ++visited;
      const auto it = ref.find(key);
      ASSERT_NE(it, ref.end()) << "for_each yielded unknown key " << key;
      ASSERT_EQ(value, it->second) << "key " << key;
    });
    ASSERT_EQ(visited, ref.size()) << "phase " << phase;
    for (const auto& [key, value] : ref) {
      const auto* found = map.find(key);
      ASSERT_NE(found, nullptr) << "key " << key << " lost in phase "
                                << phase;
      ASSERT_EQ(*found, value) << "key " << key;
    }
  }
}

TEST(FlatHashMap, ClearEmptiesButKeepsSlots) {
  FlatHashMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.try_emplace(k, 1);
  const std::size_t slots = map.slot_count();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.slot_count(), slots);
  EXPECT_FALSE(map.contains(5));
  map.try_emplace(5, 2);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, ForEachVisitsEveryEntryOnce) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 10; k < 20; ++k) map.try_emplace(k, k);
  std::set<std::uint64_t> seen;
  map.for_each([&](std::uint64_t key, std::uint64_t value) {
    EXPECT_EQ(key, value);
    EXPECT_TRUE(seen.insert(key).second);
  });
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(SpscQueue, FifoOrderAcrossWraparound) {
  SpscQueue<int> q(4);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    while (q.try_push(next_push + 0)) ++next_push;
    EXPECT_EQ(q.size(), q.capacity());
    while (auto v = q.try_pop()) {
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, FullRingRejectsWithoutLosingValue) {
  SpscQueue<std::vector<int>> q(2);
  EXPECT_TRUE(q.try_push({1}));
  EXPECT_TRUE(q.try_push({2}));
  std::vector<int> overflow{3, 4, 5};
  EXPECT_FALSE(q.try_push(std::move(overflow)));
  EXPECT_EQ(overflow.size(), 3u);  // rejected push leaves the value intact
  auto first = q.try_pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at(0), 1);
  EXPECT_TRUE(q.try_push(std::move(overflow)));
}

TEST(SpscQueue, PopReleasesSlotResources) {
  SpscQueue<std::shared_ptr<int>> q(4);
  auto payload = std::make_shared<int>(7);
  q.try_push(std::shared_ptr<int>(payload));
  auto popped = q.try_pop();
  ASSERT_TRUE(popped.has_value());
  // The ring slot was reset on pop: only `payload` and `popped` remain.
  EXPECT_EQ(payload.use_count(), 2);
}

TEST(SpscQueue, ConcurrentProducerConsumer) {
  constexpr int kItems = 100000;
  SpscQueue<int> q(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!q.try_push(i + 0)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(Env, ScaledRespectsFullFlag) {
  ::unsetenv("NVC_FULL");
  EXPECT_EQ(scaled(10, 100), 10);
  ::setenv("NVC_FULL", "1", 1);
  EXPECT_EQ(scaled(10, 100), 100);
  ::unsetenv("NVC_FULL");
}

}  // namespace
}  // namespace nvc
