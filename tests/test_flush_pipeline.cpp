// The flush-behind pipeline (DESIGN.md §8): FlushChannel / FlushWorker /
// AsyncFlushSink. Runs under the `tsan` ctest label — configure with
// -DNVC_SANITIZE=thread to check the producer/worker handoff, the helping
// consumer, and the stats aggregation under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/flush_pipeline.hpp"
#include "core/log_ordered_sink.hpp"
#include "runtime/runtime.hpp"

namespace nvc::core {
namespace {

/// Records every line it receives (mutex so worker and helper may both
/// deliver); counts drains.
struct RecordingSink final : FlushSink {
  bool flush_line(LineAddr line) override {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
    return true;
  }
  void drain() override { ++drains; }
  std::vector<LineAddr> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
  mutable std::mutex mutex;
  std::vector<LineAddr> lines;
  std::atomic<std::uint64_t> drains{0};
};

/// Worker-side sink that forwards into an externally owned recorder (the
/// channel wants ownership; tests want to inspect).
struct ForwardSink final : FlushSink {
  explicit ForwardSink(FlushSink* t) : target(t) {}
  bool flush_line(LineAddr line) override { return target->flush_line(line); }
  void drain() override { target->drain(); }
  FlushSink* target;
};

/// Sink whose flushes take a while — fills the ring faster than it drains.
struct SlowSink final : FlushSink {
  explicit SlowSink(FlushSink* t) : target(t) {}
  bool flush_line(LineAddr line) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return target->flush_line(line);
  }
  FlushSink* target;
};

TEST(FlushChannel, TicketWaitDeliversEveryLineInOrder) {
  RecordingSink record;
  auto channel = FlushWorker::shared().open_channel(
      std::make_unique<ForwardSink>(&record), 64);
  constexpr std::uint64_t kLines = 48;  // < capacity: everything queues
  AsyncFlushSink sink(channel, &record);
  for (std::uint64_t i = 1; i <= kLines; ++i) {
    sink.flush_line(static_cast<LineAddr>(i));
  }
  sink.drain();
  EXPECT_EQ(channel->flushed(), channel->pushed());
  EXPECT_EQ(sink.overflow_flushes(), 0u);
  EXPECT_GE(record.drains.load(), 1u);
  // The ring is FIFO and the consumer side is serialized (worker sweep or
  // helping producer, whoever wins), so delivery order = issue order.
  const auto lines = record.snapshot();
  ASSERT_EQ(lines.size(), kLines);
  for (std::uint64_t i = 0; i < kLines; ++i) {
    EXPECT_EQ(lines[i], i + 1);
  }
}

TEST(FlushChannel, WorkerDrainsWithoutProducerHelp) {
  RecordingSink record;
  auto channel = FlushWorker::shared().open_channel(
      std::make_unique<ForwardSink>(&record), 64);
  for (LineAddr l = 1; l <= 8; ++l) ASSERT_TRUE(channel->try_push(l));
  channel->request_wake();
  // No wait_drained() — only the background worker can make progress.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (channel->flushed() < 8 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(channel->flushed(), 8u);
  EXPECT_NE(channel->last_flush_thread(), std::this_thread::get_id());
  channel->close();
}

TEST(AsyncFlushSink, RingOverflowFallsBackToLocalSynchronousFlush) {
  RecordingSink record;
  auto channel = FlushWorker::shared().open_channel(
      std::make_unique<SlowSink>(&record), 4);
  AsyncFlushSink sink(channel, &record);
  constexpr std::uint64_t kLines = 64;
  for (LineAddr l = 1; l <= kLines; ++l) sink.flush_line(l);
  sink.drain();
  // 64 fast pushes against a 4-deep ring drained at 200 µs/line must
  // overflow; every line still arrives exactly once.
  EXPECT_GT(sink.overflow_flushes(), 0u);
  EXPECT_EQ(record.snapshot().size(), kLines);
  EXPECT_EQ(channel->flushed() + sink.overflow_flushes(), kLines);
}

TEST(AsyncFlushSink, InflightTrackingFollowsTheRing) {
  RecordingSink record;
  auto channel = FlushWorker::shared().open_channel(
      std::make_unique<ForwardSink>(&record), 64);
  AsyncFlushSink sink(channel, &record);
  EXPECT_FALSE(sink.maybe_inflight(7));
  sink.flush_line(7);
  // Queued (the worker may or may not have popped yet — a true return is
  // allowed to be conservative, but after drain it must be false).
  sink.drain();
  EXPECT_FALSE(sink.maybe_inflight(7));
  // A never-pushed line is never in flight.
  EXPECT_FALSE(sink.maybe_inflight(8));
}

TEST(AsyncFlushSink, DeviceModelMakesDrainWaitForDurability) {
  RecordingSink record;
  auto channel = FlushWorker::shared().open_channel(
      std::make_unique<ForwardSink>(&record), 64);
  FlushDeviceModel model;
  model.latency_ns = 2'000'000;  // 2 ms: dwarfs scheduling noise
  model.issue_ns = 1;
  AsyncFlushSink sink(channel, &record, model);
  const auto start = std::chrono::steady_clock::now();
  sink.flush_line(1);
  sink.drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count(),
            1'000'000);
}

TEST(AsyncFlushSink, LogSyncHappensAtEnqueueTime) {
  // LogOrderedSink wraps the async sink: the epoch-log sync must run on the
  // enqueuing thread before the line can enter the ring.
  struct CountingLog final : EpochLog {
    bool sync() override {
      ++syncs;
      thread = std::this_thread::get_id();
      return true;
    }
    std::uint64_t syncs = 0;
    std::thread::id thread{};
  };
  RecordingSink record;
  auto channel = FlushWorker::shared().open_channel(
      std::make_unique<ForwardSink>(&record), 64);
  AsyncFlushSink async_sink(channel, &record);
  CountingLog log;
  LogOrderedSink ordered(&async_sink, &log);
  ordered.flush_line(1);
  ordered.flush_line(2);
  EXPECT_EQ(log.syncs, 2u);
  EXPECT_EQ(log.thread, std::this_thread::get_id());
  ordered.drain();
  EXPECT_EQ(record.snapshot().size(), 2u);
}

TEST(FlushPipelineRuntime, AsyncModeMatchesSyncFlushAccounting) {
  auto run = [](bool async) {
    runtime::RuntimeConfig config;
    config.region_name =
        std::string("flushpipe.acct.") + (async ? "async" : "sync");
    config.region_size = 1u << 20;
    config.policy = core::PolicyKind::kSoftCacheOffline;
    config.policy_config.cache_size = 4;
    config.flush = pmem::FlushKind::kSimulated;
    config.simulated_flush_ns = 0;  // counting, not timing
    config.async_flush = async;
    config.undo_logging = true;
    config.log_sync = runtime::LogSyncMode::kBatched;
    runtime::Runtime rt(config);
    auto* cells = static_cast<std::uint64_t*>(rt.pm_alloc(64 * 64));
    for (int f = 0; f < 32; ++f) {
      runtime::FaseScope fase(rt);
      for (int s = 0; s < 16; ++s) {
        rt.pstore(cells[(f * 7 + s * 3) % 512],
                  static_cast<std::uint64_t>(f * 100 + s));
      }
    }
    rt.thread_flush();
    const runtime::RuntimeStats stats = rt.stats();
    rt.destroy_storage();
    return stats;
  };
  const runtime::RuntimeStats sync_stats = run(false);
  const runtime::RuntimeStats async_stats = run(true);
  // Identical store streams => identical data traffic, fences, log records:
  // the pipeline moves write-backs in time, never adds or drops any.
  EXPECT_EQ(sync_stats.stores, async_stats.stores);
  EXPECT_EQ(sync_stats.flushes, async_stats.flushes);
  EXPECT_EQ(sync_stats.fences, async_stats.fences);
  EXPECT_EQ(sync_stats.log_records, async_stats.log_records);
  EXPECT_GT(async_stats.flushes, 0u);
}

TEST(FlushPipelineRuntime, StatsNeverRaceWithTheWorker) {
  // Enqueue write-backs with no commit point in sight (pwrote outside any
  // FASE never drains), then poll stats() while the background worker is
  // still popping the ring — the satellite's "stats() never races with the
  // worker" guarantee in executable form under -DNVC_SANITIZE=thread:
  // aggregation only reads the channel's release-ordered counter, never the
  // worker-owned backend's plain counters.
  runtime::RuntimeConfig config;
  config.region_name = "flushpipe.race";
  config.region_size = 1u << 20;
  config.policy = core::PolicyKind::kEager;  // every store becomes a push
  config.flush = pmem::FlushKind::kSimulated;
  config.simulated_flush_ns = 0;
  config.async_flush = true;
  config.flush_queue_depth = 256;
  runtime::Runtime rt(config);
  auto* cells = static_cast<std::uint64_t*>(rt.pm_alloc(64 * 64));
  constexpr std::uint64_t kStores = 4096;
  for (std::uint64_t i = 0; i < kStores; ++i) {
    cells[i % 512] = i;
    rt.pwrote(&cells[i % 512], sizeof(std::uint64_t));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t last = 0;
  for (;;) {
    const runtime::RuntimeStats s = rt.stats();
    EXPECT_GE(s.flushes, last);  // monotone: merged counters never rewind
    last = s.flushes;
    if (s.flushes >= kStores ||
        std::chrono::steady_clock::now() > deadline) {
      break;
    }
    std::this_thread::yield();
  }
  EXPECT_EQ(last, kStores);  // exactly-once: pops + overflow fallbacks
  rt.thread_flush();
  rt.destroy_storage();
}

TEST(FlushPool, SlowSinksNProducersMWorkersExactlyOnce) {
  // N producers x M pool workers with deliberately slow sinks: rings fill,
  // producers overflow into request_wake storms, home workers wedge in
  // flush_line long enough for steal sweeps and helping drains to engage.
  // Every line must still retire exactly once, and the release-published
  // flushed() counters must equal the producer-side pushed() counts.
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kLinesEach = 96;
  FlushWorker pool(2);
  RecordingSink record;
  std::vector<std::shared_ptr<FlushChannel>> channels(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    channels[p] = pool.open_channel(std::make_unique<SlowSink>(&record), 16);
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto& ch = *channels[p];
      for (std::uint64_t i = 0; i < kLinesEach; ++i) {
        const LineAddr tag = (static_cast<LineAddr>(p + 1) << 32) | i;
        while (!ch.try_push(tag)) {
          ch.request_wake();
          std::this_thread::yield();
        }
      }
      ch.wait_drained();
    });
  }
  for (auto& t : producers) t.join();
  std::uint64_t total = 0;
  for (auto& ch : channels) {
    EXPECT_EQ(ch->flushed(), ch->pushed());
    EXPECT_EQ(ch->pushed(), kLinesEach);
    total += ch->flushed();
    ch->close();
  }
  auto lines = record.snapshot();
  ASSERT_EQ(lines.size(), total);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(std::adjacent_find(lines.begin(), lines.end()), lines.end())
      << "a line was flushed twice";
}

}  // namespace
}  // namespace nvc::core
