// Unit and property tests for the software write-combining cache
// (paper Sections II-B and III-C: fully associative, LRU, O(1), resizable).
#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {
namespace {

/// Sink that remembers the order of flushed lines.
class RecordingSink final : public FlushSink {
 public:
  bool flush_line(LineAddr line) override {
    flushed.push_back(line);
    return true;
  }
  std::vector<LineAddr> flushed;
};

TEST(WriteCache, MissThenHit) {
  WriteCache cache(4);
  RecordingSink sink;
  EXPECT_FALSE(cache.access(10, sink));  // insert
  EXPECT_TRUE(cache.access(10, sink));   // combined
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(sink.flushed.empty());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().accesses, 2u);
}

TEST(WriteCache, EvictsLeastRecentlyUsed) {
  WriteCache cache(2);
  RecordingSink sink;
  cache.access(1, sink);
  cache.access(2, sink);
  cache.access(3, sink);  // evicts 1
  ASSERT_EQ(sink.flushed.size(), 1u);
  EXPECT_EQ(sink.flushed[0], 1u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(WriteCache, HitRefreshesRecency) {
  WriteCache cache(2);
  RecordingSink sink;
  cache.access(1, sink);
  cache.access(2, sink);
  cache.access(1, sink);  // 1 becomes MRU
  cache.access(3, sink);  // evicts 2
  ASSERT_EQ(sink.flushed.size(), 1u);
  EXPECT_EQ(sink.flushed[0], 2u);
}

TEST(WriteCache, PaperFigure1Scenario) {
  // Figure 1: cache of two blocks holding {0x200>>6, 0x400>>6}; accessing
  // 0x600>>6 evicts 0x400>>6 (the least recently accessed).
  WriteCache cache(2);
  RecordingSink sink;
  cache.access(0x400 >> 6, sink);
  cache.access(0x200 >> 6, sink);
  cache.access(0x600 >> 6, sink);
  ASSERT_EQ(sink.flushed.size(), 1u);
  EXPECT_EQ(sink.flushed[0], static_cast<LineAddr>(0x400 >> 6));
}

TEST(WriteCache, FlushAllEmptiesLruFirst) {
  WriteCache cache(4);
  RecordingSink sink;
  for (LineAddr l = 1; l <= 4; ++l) cache.access(l, sink);
  cache.flush_all(sink);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1, 2, 3, 4}));
  EXPECT_EQ(cache.stats().fase_flushes, 4u);
}

TEST(WriteCache, ReusableAfterFlushAll) {
  WriteCache cache(4);
  RecordingSink sink;
  for (LineAddr l = 1; l <= 4; ++l) cache.access(l, sink);
  cache.flush_all(sink);
  // Previously cached lines are gone: re-accessing misses (FASE semantics).
  EXPECT_FALSE(cache.access(1, sink));
  EXPECT_TRUE(cache.access(1, sink));
}

TEST(WriteCache, ResizeShrinkEvictsExcess) {
  WriteCache cache(8);
  RecordingSink sink;
  for (LineAddr l = 1; l <= 8; ++l) cache.access(l, sink);
  cache.resize(3, sink);
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(cache.contains(6));
  EXPECT_TRUE(cache.contains(7));
  EXPECT_TRUE(cache.contains(8));
}

TEST(WriteCache, ResizeGrowKeepsContents) {
  WriteCache cache(2);
  RecordingSink sink;
  cache.access(1, sink);
  cache.access(2, sink);
  cache.resize(50, sink);
  EXPECT_TRUE(sink.flushed.empty());
  for (LineAddr l = 3; l <= 50; ++l) cache.access(l, sink);
  EXPECT_TRUE(sink.flushed.empty());  // fits now
  EXPECT_EQ(cache.size(), 50u);
}

TEST(WriteCache, CapacityOneAlwaysEvicts) {
  WriteCache cache(1);
  RecordingSink sink;
  cache.access(1, sink);
  cache.access(2, sink);
  cache.access(1, sink);
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1, 2}));
}

TEST(WriteCache, LruOrderReportsTailToHead) {
  WriteCache cache(4);
  RecordingSink sink;
  cache.access(5, sink);
  cache.access(6, sink);
  cache.access(7, sink);
  cache.access(5, sink);  // 5 -> MRU
  EXPECT_EQ(cache.lru_order(), (std::vector<LineAddr>{6, 7, 5}));
}

TEST(WriteCache, EveryMissFlushesExactlyOnceEventually) {
  // Invariant behind "miss ratio == flush ratio": each inserted line leaves
  // the cache exactly once, via eviction or flush_all.
  WriteCache cache(7);
  RecordingSink sink;
  Rng rng(123);
  std::uint64_t misses = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!cache.access(rng.below(50), sink)) ++misses;
  }
  cache.flush_all(sink);
  EXPECT_EQ(sink.flushed.size(), misses);
}

// --- reference-model property test ------------------------------------------------

/// Naive LRU model: deque of lines, MRU at back.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t cap) : cap_(cap) {}

  bool access(LineAddr line, std::vector<LineAddr>* evicted) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (*it == line) {
        order_.erase(it);
        order_.push_back(line);
        return true;
      }
    }
    if (order_.size() == cap_) {
      evicted->push_back(order_.front());
      order_.pop_front();
    }
    order_.push_back(line);
    return false;
  }

  void resize(std::size_t cap, std::vector<LineAddr>* evicted) {
    while (order_.size() > cap) {
      evicted->push_back(order_.front());
      order_.pop_front();
    }
    cap_ = cap;
  }

  void flush_all(std::vector<LineAddr>* evicted) {
    for (const LineAddr l : order_) evicted->push_back(l);
    order_.clear();
  }

 private:
  std::size_t cap_;
  std::deque<LineAddr> order_;
};

struct FuzzParams {
  std::uint64_t seed;
  std::size_t capacity;
  std::size_t address_space;
};

class WriteCacheFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(WriteCacheFuzz, MatchesReferenceModel) {
  const FuzzParams p = GetParam();
  WriteCache cache(p.capacity);
  ReferenceLru ref(p.capacity);
  RecordingSink sink;
  std::vector<LineAddr> ref_flushed;
  Rng rng(p.seed);

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.90) {
      const LineAddr line = rng.below(p.address_space) + 1;
      const bool hit = cache.access(line, sink);
      const bool ref_hit = ref.access(line, &ref_flushed);
      ASSERT_EQ(hit, ref_hit) << "step " << step;
    } else if (roll < 0.95) {
      const std::size_t new_cap = rng.range(1, 2 * p.capacity);
      cache.resize(new_cap, sink);
      ref.resize(new_cap, &ref_flushed);
    } else {
      cache.flush_all(sink);
      ref.flush_all(&ref_flushed);
    }
    ASSERT_EQ(sink.flushed, ref_flushed) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WriteCacheFuzz,
    ::testing::Values(FuzzParams{1, 1, 4}, FuzzParams{2, 2, 8},
                      FuzzParams{3, 8, 16}, FuzzParams{4, 8, 200},
                      FuzzParams{5, 23, 60}, FuzzParams{6, 50, 50},
                      FuzzParams{7, 50, 1000}, FuzzParams{8, 128, 256}));

}  // namespace
}  // namespace nvc::core
