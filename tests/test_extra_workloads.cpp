// Tests for the extension workloads (lu, fft, radix) and the full-suite
// properties that must hold for every registered workload, paper set or not.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"

#include "core/sampler.hpp"
#include "workloads/replay.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {
namespace {

WorkloadParams quick(std::size_t threads = 1) {
  WorkloadParams p;
  p.threads = threads;
  p.seed = 7;
  return p;
}

TraceApi record(const std::string& name, const WorkloadParams& p) {
  TraceApi api(p.threads, 256u << 20);
  make_workload(name)->run(api, p);
  return api;
}

TEST(ExtensionRegistry, ThreeKernelsRegistered) {
  const auto names = extension_workload_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "lu");
  EXPECT_EQ(names[1], "fft");
  EXPECT_EQ(names[2], "radix");
  for (const auto& n : names) EXPECT_NE(make_workload(n), nullptr);
}

TEST(ExtensionRegistry, PaperListUnchanged) {
  // The paper's Table III list must stay exactly the 11 entries; the
  // extensions are exposed separately.
  EXPECT_EQ(workload_names().size(), 11u);
  for (const auto& n : workload_names()) {
    EXPECT_NE(n, "lu");
    EXPECT_NE(n, "fft");
    EXPECT_NE(n, "radix");
  }
}

class ExtensionSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtensionSanity, ProducesSubstantialWriteStream) {
  const TraceApi api = record(GetParam(), quick());
  EXPECT_GT(api.total_stores(), 10000u);
  EXPECT_GE(api.trace(0).fase_count, 2u);
}

TEST_P(ExtensionSanity, FlushOrderingHolds) {
  const TraceApi api = record(GetParam(), quick());
  core::PolicyConfig config;
  const auto er = replay_flush_count_all(api, core::PolicyKind::kEager);
  const auto la = replay_flush_count_all(api, core::PolicyKind::kLazy);
  const auto at =
      replay_flush_count_all(api, core::PolicyKind::kAtlas, config);

  const auto knee = core::BurstSampler::analyze_offline(
      [&] {
        std::vector<LineAddr> stores;
        std::vector<std::size_t> boundaries;
        api.trace(0).store_trace(&stores, &boundaries);
        return stores;
      }(),
      [&] {
        std::vector<LineAddr> stores;
        std::vector<std::size_t> boundaries;
        api.trace(0).store_trace(&stores, &boundaries);
        return boundaries;
      }(),
      core::KneeConfig{}, nullptr);
  config.cache_size = knee.chosen_size;
  const auto sc = replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);

  EXPECT_DOUBLE_EQ(er.flush_ratio(), 1.0);
  EXPECT_LE(la.flushes, sc.flushes);
  EXPECT_LE(sc.flushes, at.flushes * 11 / 10);
  EXPECT_LE(at.flushes, er.flushes);
}

TEST_P(ExtensionSanity, MultithreadedStrongScaling) {
  const TraceApi one = record(GetParam(), quick(1));
  const TraceApi four = record(GetParam(), quick(4));
  std::uint64_t s1 = 0, s4 = 0;
  for (std::size_t t = 0; t < one.threads(); ++t) {
    s1 += one.trace(t).store_count;
  }
  for (std::size_t t = 0; t < four.threads(); ++t) {
    s4 += four.trace(t).store_count;
  }
  EXPECT_NEAR(static_cast<double>(s4) / static_cast<double>(s1), 1.0, 0.10);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ExtensionSanity,
                         ::testing::Values("lu", "fft", "radix"));

// --- algorithmic correctness of the kernels -----------------------------------------

TEST(LuKernel, FactorizationIsNumericallySane) {
  // After LU without pivoting on a diagonally dominant matrix, the in-place
  // factors must be finite and the diagonal nonzero.
  TraceApi api(1, 256u << 20);
  auto w = make_workload("lu");
  w->run(api, quick());
  // The workload owns its arena memory; sanity is checked via the trace
  // volume here and the direct math below.
  const std::size_t n = 32;
  std::vector<double> a(n * n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] = (i == j) ? static_cast<double>(n) : rng.uniform() - 0.5;
    }
  }
  // Unblocked reference elimination mirrors the workload's math.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = a[i * n + k] / a[k * n + k];
      a[i * n + k] = l;
      for (std::size_t j = k + 1; j < n; ++j) {
        a[i * n + j] -= l * a[k * n + j];
      }
    }
  }
  for (const double v : a) ASSERT_TRUE(std::isfinite(v));
  for (std::size_t i = 0; i < n; ++i) ASSERT_NE(a[i * n + i], 0.0);
}

TEST(RadixKernel, HistogramHotSetIsCombinable) {
  // The count phase's histogram writes must be highly combinable: SC at a
  // size covering the 16-line histogram flushes far less than ER.
  const TraceApi api = record("radix", quick());
  core::PolicyConfig config;
  config.cache_size = 24;
  const auto sc = replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);
  EXPECT_LT(sc.flush_ratio(), 0.5);
}

TEST(FftKernel, EveryStageRewritesAllPoints) {
  const TraceApi api = record("fft", quick());
  // n=8192 points => 13 stages x 4 stores per butterfly x n/2 butterflies,
  // plus init and bit-reversal; total must be near 13*2n + 2n.
  const double expected = 13.0 * 2.0 * 8192 + 2 * 8192;
  EXPECT_NEAR(static_cast<double>(api.total_stores()), expected,
              expected * 0.25);
}

}  // namespace
}  // namespace nvc::workloads
