// Durable split-ordered hash map (structures/durable_map.hpp) — `ctest -L
// structures`, also in the tsan tier. Same two regimes as the queue suite:
// seeded turnstile interleavings with the linearizability search, and a
// free-running NVC_STRUCT_THREADS stress over the heap backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "structures/durable_map.hpp"
#include "structures/pspace.hpp"
#include "testing/history.hpp"
#include "testing/interleave.hpp"
#include "testing/linearizability.hpp"
#include "testing/seed.hpp"

namespace {

using nvc::Rng;
using nvc::structures::DurableMap;
using nvc::structures::HeapPSpace;
using nvc::structures::ShadowPSpace;
using nvc::testing::check_linearizable;
using nvc::testing::HistoryRecorder;
using nvc::testing::InterleaveScheduler;
using nvc::testing::LinVerdict;
using nvc::testing::MapModel;
using nvc::testing::OpCode;
using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

void recorded_insert(DurableMap& m, HistoryRecorder& rec, std::size_t thread,
                     std::uint64_t key, std::uint64_t value) {
  const std::size_t op = rec.begin(thread, OpCode::kInsert, key, value);
  rec.end(thread, op, m.insert(key, value));
}

void recorded_erase(DurableMap& m, HistoryRecorder& rec, std::size_t thread,
                    std::uint64_t key) {
  const std::size_t op = rec.begin(thread, OpCode::kErase, key);
  std::uint64_t v = 0;
  const bool ok = m.erase(key, &v);
  rec.end(thread, op, ok, v);
}

void recorded_contains(DurableMap& m, HistoryRecorder& rec,
                       std::size_t thread, std::uint64_t key) {
  const std::size_t op = rec.begin(thread, OpCode::kContains, key);
  std::uint64_t v = 0;
  const bool ok = m.contains(key, &v);
  rec.end(thread, op, ok, v);
}

std::map<std::uint64_t, std::uint64_t> as_map(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& kvs) {
  return {kvs.begin(), kvs.end()};
}

TEST(DurableMap, BasicOpsAndRecovery) {
  ShadowPSpace ps(64 * 1024, /*elide=*/true);
  DurableMap m(ps, /*buckets=*/16);
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(17, 170));  // same bucket as 1 (mod 16)
  EXPECT_TRUE(m.insert(2, 20));
  EXPECT_FALSE(m.insert(1, 99));  // no overwrite
  std::uint64_t v = 0;
  EXPECT_TRUE(m.contains(17, &v));
  EXPECT_EQ(v, 170u);
  EXPECT_TRUE(m.erase(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_FALSE(m.erase(1));
  EXPECT_FALSE(m.contains(1));
  // The durable list (dummies filtered out) is the map: the volatile
  // bucket table contributes nothing to recovery.
  EXPECT_EQ(as_map(m.recovered_contents()),
            (std::map<std::uint64_t, std::uint64_t>{{17, 170}, {2, 20}}));
  EXPECT_EQ(ps.table().pending_count(), 0u);
}

TEST(DurableMap, SplitOrderKeysStayInjective) {
  // so_regular forces the low sort bit; reversed keys differing only in
  // their top bit would collide without the <2^63 precondition.
  EXPECT_NE(DurableMap::so_regular(5), DurableMap::so_regular(7));
  EXPECT_NE(DurableMap::so_regular(1), DurableMap::so_dummy(1));
  // Dummy sorts are even, regular sorts odd — disjoint by construction.
  EXPECT_EQ(DurableMap::so_dummy(8) & 1, 0u);
  EXPECT_EQ(DurableMap::so_regular(8) & 1, 1u);
}

TEST(DurableMap, TurnstileInterleavingsAreLinearizable) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int iter = 0; iter < 12; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    HeapPSpace ps(256 * 1024, /*elide=*/true);
    DurableMap m(ps, 8);
    InterleaveScheduler sched(seed);
    ps.set_yield_hook(sched.hook());
    constexpr std::size_t kThreads = 3;
    HistoryRecorder rec(kThreads);
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < kThreads; ++i) {
      bodies.push_back([&, i, seed](std::size_t) {
        Rng rng(seed ^ (0xC2B2AE35u * (i + 1)));
        for (int k = 0; k < 6; ++k) {
          const std::uint64_t key = 1 + rng.below(6);  // heavy contention
          switch (rng.below(3)) {
            case 0:
              recorded_insert(m, rec, i, key, 100 * (i + 1) + k);
              break;
            case 1:
              recorded_erase(m, rec, i, key);
              break;
            default:
              recorded_contains(m, rec, i, key);
          }
        }
      });
    }
    sched.run(bodies);
    const auto result = check_linearizable<MapModel>(rec.snapshot());
    ASSERT_EQ(result.verdict, LinVerdict::kOk) << result.detail;
    // Volatile state and durable state agree once all ops completed.
    std::map<std::uint64_t, std::uint64_t> live;
    for (std::uint64_t key = 1; key <= 6; ++key) {
      std::uint64_t v = 0;
      if (m.contains(key, &v)) live.emplace(key, v);
    }
    EXPECT_EQ(as_map(m.recovered_contents()), live);
    EXPECT_EQ(ps.table().pending_count(), 0u);
  }
}

TEST(DurableMap, FreeRunningStressIsLinearizable) {
  const std::size_t threads = static_cast<std::size_t>(
      nvc::env_int("NVC_STRUCT_THREADS", 4));
  const std::size_t per = std::max<std::size_t>(2, 56 / threads);
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    HeapPSpace ps(512 * 1024, /*elide=*/true);
    DurableMap m(ps, 8);
    InterleaveScheduler sched(seed, /*free_running=*/true);
    ps.set_yield_hook(sched.hook());
    HistoryRecorder rec(threads);
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < threads; ++i) {
      bodies.push_back([&, i, seed](std::size_t) {
        Rng rng(seed ^ (0x165667B1u * (i + 1)));
        for (std::size_t k = 0; k < per; ++k) {
          const std::uint64_t key = 1 + rng.below(8);
          switch (rng.below(3)) {
            case 0:
              recorded_insert(m, rec, i, key, 1000 * (i + 1) + k);
              break;
            case 1:
              recorded_erase(m, rec, i, key);
              break;
            default:
              recorded_contains(m, rec, i, key);
          }
        }
      });
    }
    sched.run(bodies);
    const auto result = check_linearizable<MapModel>(rec.snapshot());
    ASSERT_EQ(result.verdict, LinVerdict::kOk) << result.detail;
    EXPECT_EQ(ps.table().pending_count(), 0u);
  }
}

}  // namespace
