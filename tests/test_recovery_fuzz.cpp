// Image-corruption fuzzer for the salvage-mode recovery pipeline
// (DESIGN.md §14).
//
// For every combination of the three durability axes —
//
//     log protocol   strict | batched      (LogSyncMode)
//     data flushing  sync   | async        (manual flush-behind pipeline)
//     flush elision  off    | on           (shared FliT table)
//
// — a seeded workload runs against the crash rig, power fails at a seeded
// event, and the frozen durable image is snapshotted. Each of the six
// corruption classes (testing/corruptor.hpp) then mutates a copy of that
// image and the copy goes through RecoveryManager. The oracle:
//
//   R1  recovery never crashes or UBs, whatever the bytes say (the whole
//       binary runs under the asan/ubsan presets like every suite);
//   R2  if the report says ok(), the salvaged data region is byte-identical
//       to the true committed prefix (the baseline recovery of the
//       *uncorrupted* image, which itself must match a committed snapshot);
//   R3  otherwise the report classifies the damage (non-empty defects) —
//       "unrecoverable" is an honest answer, silence is not.
//
// Every case prints a one-line NVC_FUZZ_SEED / NVC_CORRUPT_* replay
// command. RecoveryFuzzBug proves the harness has teeth: with the seeded
// verification-skip bug armed (RecoveryManager::set_bug_skip_verification)
// the same corrupted images produce clean reports over wrong bytes, which
// the R2 oracle flags.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/recovery.hpp"
#include "runtime/undo_log.hpp"
#include "support/crash_rig.hpp"
#include "testing/corruptor.hpp"
#include "testing/seed.hpp"

namespace nvc {
namespace {

using testing::CorruptionKind;
using testing::CrashRig;
using testing::CrashRigConfig;
using testing::ImageCorruptor;
using testing::ImageLayout;

// The 2x2x2 mode matrix. async always uses the manual pipeline so the whole
// interleaving replays deterministically from the seed on one OS thread.
struct RecMode {
  runtime::LogSyncMode log;
  bool async_flush;
  bool elide;
};

std::string mode_name(const RecMode& mode) {
  return std::string(runtime::to_string(mode.log)) + "-" +
         (mode.async_flush ? "asyncflush" : "syncflush") + "-" +
         (mode.elide ? "elide" : "noelide");
}

const RecMode kAllModes[] = {
    {runtime::LogSyncMode::kStrict, false, false},
    {runtime::LogSyncMode::kStrict, false, true},
    {runtime::LogSyncMode::kStrict, true, false},
    {runtime::LogSyncMode::kStrict, true, true},
    {runtime::LogSyncMode::kBatched, false, false},
    {runtime::LogSyncMode::kBatched, false, true},
    {runtime::LogSyncMode::kBatched, true, false},
    {runtime::LogSyncMode::kBatched, true, true},
};

constexpr std::size_t kContexts = 2;
constexpr std::size_t kDataLines = 16;  // per context
constexpr std::size_t kDataBytes = kDataLines * kCacheLineSize;
constexpr std::size_t kLogBytes = 4096;
constexpr std::size_t kCells = kDataBytes / sizeof(std::uint64_t);

CrashRigConfig rig_config(const RecMode& mode) {
  CrashRigConfig config;
  config.mode = mode.log;
  config.async_flush = mode.async_flush;
  config.manual_pipeline = mode.async_flush;
  config.elide = mode.elide;
  config.contexts = kContexts;
  config.data_lines = kDataLines;
  config.log_bytes = kLogBytes;
  config.cache_size = 2;  // tiny: mid-FASE evictions exercise the log path
  config.flush_ring = 8;
  return config;
}

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One deterministic mini-workload against `rig`, mirroring every store in
/// `mirror` and snapshotting the mirror into `committed[ctx]` at each
/// successful commit. Captures a mid-run durable snapshot into `stale` (for
/// the stale-generation class) when non-null.
struct WorkloadResult {
  std::array<std::vector<std::uint8_t>, kContexts> mirror;
  std::array<std::vector<std::vector<std::uint8_t>>, kContexts> committed;
};

WorkloadResult run_workload(CrashRig& rig, std::uint64_t seed,
                            std::vector<std::uint8_t>* stale) {
  WorkloadResult r;
  for (std::size_t c = 0; c < kContexts; ++c) {
    r.mirror[c].assign(kDataBytes, 0);
    r.committed[c].push_back(r.mirror[c]);  // the all-initial state
  }
  std::uint64_t rng = seed;
  constexpr std::size_t kRounds = 6;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t c = 0; c < kContexts; ++c) {
      rig.fase_begin(c);
      const std::size_t writes = 2 + splitmix(rng) % 3;
      for (std::size_t w = 0; w < writes; ++w) {
        const std::size_t cell = splitmix(rng) % kCells;
        const std::uint64_t value = splitmix(rng);
        rig.pstore_u64(c, cell, value);
        std::memcpy(r.mirror[c].data() + cell * sizeof(value), &value,
                    sizeof(value));
      }
      if (rig.fase_end(c)) r.committed[c].push_back(r.mirror[c]);
      // Manual pipeline: write back a seeded number of queued lines, so
      // the freeze point can land mid-drain.
      for (std::size_t p = splitmix(rng) % 3; p > 0; --p) rig.pump_flush(c);
    }
    if (stale != nullptr && round == kRounds / 2) *stale = rig.durable_image();
  }
  return r;
}

ImageLayout layout_of(const CrashRig& rig) {
  ImageLayout layout;
  layout.data_offset = 0;
  layout.data_size = kContexts * kDataBytes;
  layout.log_offset = rig.image_log_offset(0);
  layout.log_segment_size = kLogBytes;
  layout.log_segments = kContexts;
  return layout;
}

runtime::RegionView view_of(std::vector<std::uint8_t>& image,
                            const ImageLayout& layout) {
  runtime::RegionView view;
  view.data = image.data() + layout.data_offset;
  view.data_size = layout.data_size;
  view.logs = image.data() + layout.log_offset;
  view.log_segment_size = layout.log_segment_size;
  view.log_segments = layout.log_segments;
  view.heap_header = false;  // rig images are raw cells, no allocator header
  return view;
}

std::vector<std::uint8_t> data_slice(const std::vector<std::uint8_t>& image,
                                     const ImageLayout& layout,
                                     std::size_t ctx) {
  const std::size_t off = layout.data_offset + ctx * kDataBytes;
  return {image.begin() + off, image.begin() + off + kDataBytes};
}

bool in_committed_set(const WorkloadResult& wl,
                      const std::vector<std::uint8_t>& image,
                      const ImageLayout& layout, std::size_t ctx) {
  const std::vector<std::uint8_t> slice = data_slice(image, layout, ctx);
  for (const auto& snap : wl.committed[ctx]) {
    if (snap == slice) return true;
  }
  return false;
}

std::string corrupt_replay_line(std::uint64_t seed, const std::string& mode,
                                CorruptionKind kind, std::size_t sites) {
  return "replay: NVC_FUZZ_SEED=" + std::to_string(seed) +
         " NVC_FUZZ_MODE=" + mode +
         " NVC_CORRUPT_KIND=" + testing::to_string(kind) +
         " NVC_CORRUPT_SITES=" + std::to_string(sites) +
         " ctest -R RecoveryFuzz --output-on-failure";
}

/// Build the persisted-checksum-arena model: one commit-time CRC per data
/// line of the true committed image.
runtime::LineVerifyTable make_table(const std::vector<std::uint8_t>& image,
                                    const ImageLayout& layout) {
  runtime::LineVerifyTable table(layout.data_size);
  const std::uint8_t* data = image.data() + layout.data_offset;
  for (std::size_t idx = 0; idx < layout.data_size / kCacheLineSize; ++idx) {
    table.note_commit(idx, data + idx * kCacheLineSize);
  }
  return table;
}

class RecoveryFuzz : public ::testing::TestWithParam<RecMode> {};

TEST_P(RecoveryFuzz, CorruptedImagesNeverLie) {
  const RecMode mode = GetParam();
  const char* only = std::getenv("NVC_FUZZ_MODE");
  if (only != nullptr && only != mode_name(mode)) GTEST_SKIP();

  const std::uint64_t base_seed =
      testing::seed_from_env("NVC_FUZZ_SEED", 0x5eedull);
  CorruptionKind pinned_kind{};
  const bool kind_pinned =
      testing::parse_corruption_kind(std::getenv("NVC_CORRUPT_KIND"),
                                     pinned_kind);
  std::size_t sites = 4;
  if (const char* s = std::getenv("NVC_CORRUPT_SITES")) {
    sites = static_cast<std::size_t>(std::strtoull(s, nullptr, 10));
  }
  const std::size_t iters = [] {
    const char* s = std::getenv("NVC_FUZZ_ITERS");
    return s != nullptr
               ? static_cast<std::size_t>(std::strtoull(s, nullptr, 10))
               : std::size_t{3};
  }();

  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + iter * 0x9e37ull;
    // Probe run: count the script's events, then pick a seeded freeze
    // point somewhere in the live middle of the run.
    std::uint64_t total = 0;
    {
      CrashRig probe(rig_config(mode));
      run_workload(probe, seed, nullptr);
      total = probe.events();
    }
    ASSERT_GT(total, 8u);
    std::uint64_t rng = seed ^ 0xfeedULL;
    const std::uint64_t freeze = 4 + splitmix(rng) % (total - 4);

    CrashRig rig(rig_config(mode));
    rig.freeze_at(freeze);
    std::vector<std::uint8_t> stale;
    const WorkloadResult wl = run_workload(rig, seed, &stale);
    const std::vector<std::uint8_t> img0 = rig.durable_image();
    const ImageLayout layout = layout_of(rig);

    // Baseline: salvage the *uncorrupted* image. Must come out ok, with
    // every context's data landing on one of its committed snapshots.
    std::vector<std::uint8_t> base = img0;
    runtime::RecoveryManager baseline(view_of(base, layout));
    const runtime::RecoveryReport base_report = baseline.run();
    SCOPED_TRACE(corrupt_replay_line(base_seed, mode_name(mode),
                                     CorruptionKind::kBitFlips, sites) +
                 " (freeze " + std::to_string(freeze) + ")");
    ASSERT_TRUE(base_report.ok()) << base_report.summary();
    for (std::size_t c = 0; c < kContexts; ++c) {
      EXPECT_TRUE(in_committed_set(wl, base, layout, c))
          << "context " << c
          << " baseline recovery left a never-committed state";
    }
    const runtime::LineVerifyTable table = make_table(base, layout);

    // Stage-4 sanity: re-salvaging the already-salvaged image with the
    // checksum arena attached stays clean.
    {
      std::vector<std::uint8_t> again = base;
      runtime::RecoveryManager mgr(view_of(again, layout));
      mgr.set_verify_table(&table);
      EXPECT_TRUE(mgr.run().ok());
    }

    const std::vector<std::uint8_t> base_data{
        base.begin() + layout.data_offset,
        base.begin() + layout.data_offset + layout.data_size};

    for (std::size_t k = 0; k < testing::kCorruptionKinds; ++k) {
      const CorruptionKind kind =
          kind_pinned ? pinned_kind : testing::corruption_kind(k);
      std::vector<std::uint8_t> img = img0;
      ImageCorruptor corruptor({seed + k, sites}, layout);
      const std::string what = corruptor.corrupt(kind, img, &stale);
      SCOPED_TRACE(corrupt_replay_line(base_seed, mode_name(mode), kind,
                                       sites) +
                   "\n  " + what);

      runtime::RecoveryManager mgr(view_of(img, layout));
      mgr.set_verify_table(&table);
      const runtime::RecoveryReport report = mgr.run();  // R1: must not die

      const std::vector<std::uint8_t> got{
          img.begin() + layout.data_offset,
          img.begin() + layout.data_offset + layout.data_size};
      if (report.ok()) {
        // R2: a clean/salvaged verdict must mean the true committed bytes.
        EXPECT_EQ(got, base_data) << report.summary();
      } else {
        // R3: honest failure — the report names what died.
        EXPECT_FALSE(report.defects.empty()) << report.summary();
        EXPECT_EQ(report.outcome, runtime::RecoveryOutcome::kUnrecoverable);
      }
      if (kind_pinned) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, RecoveryFuzz,
                         ::testing::ValuesIn(kAllModes),
                         [](const auto& info) {
                           std::string n = mode_name(info.param);
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Proof the harness has teeth: the seeded verification-skip bug produces a
// clean report over wrong bytes, and the R2 oracle catches exactly that.
// ---------------------------------------------------------------------------

TEST(RecoveryFuzzBug, SeededVerificationSkipIsCaught) {
  // Strict mode, sync flushing, one open (never-committed) FASE: its undo
  // records are durable below the published tail, so a restarted process
  // must roll them back.
  CrashRigConfig config = rig_config(kAllModes[0]);
  CrashRig rig(config);
  const std::uint64_t seed = testing::seed_from_env("NVC_FUZZ_SEED", 0xbadull);
  std::uint64_t s = seed;
  // A few committed FASEs first, so rollback has real prior state.
  for (std::size_t round = 0; round < 3; ++round) {
    rig.fase_begin(0);
    for (std::size_t w = 0; w < 3; ++w) {
      rig.pstore_u64(0, splitmix(s) % kCells, splitmix(s));
    }
    ASSERT_TRUE(rig.fase_end(0));
  }
  // The open FASE whose records the corruption will target. Distinct cells,
  // so the newest record's payload is never masked by a later (older)
  // rollback write to the same cell.
  rig.fase_begin(0);
  for (std::size_t w = 0; w < 4; ++w) {
    rig.pstore_u64(0, 16 + w * 2, splitmix(s));
  }
  // No fase_end: power could fail here; the durable image holds certified
  // uncommitted records.
  const std::vector<std::uint8_t> img0 = rig.durable_image();
  const ImageLayout layout = layout_of(rig);

  // Baseline + checksum arena.
  std::vector<std::uint8_t> base = img0;
  runtime::RecoveryManager baseline(view_of(base, layout));
  ASSERT_TRUE(baseline.run().ok());
  const runtime::LineVerifyTable table = make_table(base, layout);
  const std::vector<std::uint8_t> base_data{
      base.begin() + layout.data_offset,
      base.begin() + layout.data_offset + layout.data_size};

  // Corrupt one payload byte of a certified record of segment 0.
  const runtime::UndoLog::Inspection ins = runtime::UndoLog::inspect(
      img0.data() + layout.log_offset, layout.log_segment_size);
  ASSERT_TRUE(ins.formatted);
  ASSERT_FALSE(ins.offsets.empty()) << "open FASE left no certified records";
  std::vector<std::uint8_t> img = img0;
  const std::size_t payload_byte =
      layout.log_offset + ins.offsets.back() +
      sizeof(runtime::UndoLog::EntryHead);
  img[payload_byte] ^= 0x40;

  // Honest pipeline: the record no longer certifies, the chain stops short
  // of the durable tail, and the segment is reported unrecoverable.
  {
    std::vector<std::uint8_t> copy = img;
    runtime::RecoveryManager mgr(view_of(copy, layout));
    mgr.set_verify_table(&table);
    const runtime::RecoveryReport report = mgr.run();
    EXPECT_FALSE(report.ok()) << report.summary();
    EXPECT_GT(report.segments_unrecoverable, 0u);
  }

  // Buggy pipeline: trusts length fields alone, replays the corrupted
  // payload, skips data verification — clean report, wrong bytes. This is
  // exactly the (report.ok() && data != committed) state the R2 oracle
  // rejects, which is the proof the fuzzer catches the seeded bug.
  {
    std::vector<std::uint8_t> copy = img;
    runtime::RecoveryManager mgr(view_of(copy, layout));
    mgr.set_verify_table(&table);
    mgr.set_bug_skip_verification(true);
    const runtime::RecoveryReport report = mgr.run();
    const std::vector<std::uint8_t> got{
        copy.begin() + layout.data_offset,
        copy.begin() + layout.data_offset + layout.data_size};
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_NE(got, base_data)
        << "the seeded bug failed to corrupt the salvage — fuzzer has no "
           "teeth against it";
  }

  // Second face of the same bug: a scribbled *committed* data line. The
  // honest pipeline's verify stage flags it; the buggy one stays silent.
  {
    std::vector<std::uint8_t> copy = img0;
    // Scribble a committed line that differs from zero so the damage is
    // guaranteed visible against base_data.
    std::size_t target = layout.data_offset;
    for (std::size_t idx = 0; idx < layout.data_size / kCacheLineSize;
         ++idx) {
      const std::uint8_t* line = base_data.data() + idx * kCacheLineSize;
      bool nonzero = false;
      for (std::size_t b = 0; b < kCacheLineSize; ++b) {
        nonzero = nonzero || line[b] != 0;
      }
      if (nonzero) {
        target = layout.data_offset + idx * kCacheLineSize;
        break;
      }
    }
    for (std::size_t b = 0; b < kCacheLineSize; ++b) {
      copy[target + b] ^= 0xa5;
    }
    runtime::RecoveryManager honest(view_of(copy, layout));
    honest.set_verify_table(&table);
    EXPECT_FALSE(honest.run().ok());

    std::vector<std::uint8_t> copy2 = copy;
    runtime::RecoveryManager buggy(view_of(copy2, layout));
    buggy.set_verify_table(&table);
    buggy.set_bug_skip_verification(true);
    EXPECT_TRUE(buggy.run().ok())
        << "bug armed but verification still ran";
  }
}

}  // namespace
}  // namespace nvc
