// Crash-state fuzzer for the durable structure suite (`ctest -L
// structures` / `-L fuzz`): seeded turnstile interleavings over
// ShadowPSpace, a power-cut sweep across the shared event clock, and the
// durable-linearizability oracle on every cut.
//
// For each (structure, seed):
//   1. a dry run (no freeze) pins the baseline: the full history must be
//      linearizable and the elision table must quiesce;
//   2. every claimable event e gets a fresh deterministic replay with
//      freeze_at(e): flush events after e never reach the durable image,
//      while execution (and the recorded history — invocations/responses
//      claim the SAME clock) is bit-identical to the dry run;
//   3. the recovered durable contents must be explained by a linearization
//      of all ops completed by e plus any subset of the ops pending at e
//      (check_durable, linearizability.hpp).
//
// Every assertion carries a one-line NVC_FUZZ_SEED/STRUCT/FREEZE replay
// command. The suite ends by ARMING a seeded protocol bug (the early-untag
// reverted flush-pending decrement, PSpace::set_bug_early_untag) and
// demanding the same oracle CATCH it — the harness proves it can fail.
//
// Knobs: NVC_FUZZ_SEED (pin the program seed), NVC_FUZZ_STRUCT
// (queue|map|skiplist filter), NVC_FUZZ_FREEZE (pin one cut),
// NVC_FUZZ_ITERS (seeds per structure, default 3), NVC_ELIDE (default 1).
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "structures/durable_map.hpp"
#include "structures/durable_queue.hpp"
#include "structures/durable_skiplist.hpp"
#include "structures/pspace.hpp"
#include "testing/history.hpp"
#include "testing/interleave.hpp"
#include "testing/linearizability.hpp"
#include "testing/seed.hpp"

namespace {

using nvc::Rng;
using nvc::structures::DurableMap;
using nvc::structures::DurableQueue;
using nvc::structures::DurableSkiplist;
using nvc::structures::ShadowPSpace;
using nvc::testing::check_durable;
using nvc::testing::check_linearizable;
using nvc::testing::HistoryRecorder;
using nvc::testing::InterleaveScheduler;
using nvc::testing::LinVerdict;
using nvc::testing::Op;
using nvc::testing::OpCode;
using nvc::testing::QueueModel;
using nvc::testing::MapModel;
using nvc::testing::struct_replay_line;

constexpr std::uint64_t kBaseSeed = 20260808;
constexpr std::uint64_t kNoFreeze = ~std::uint64_t{0};
constexpr std::size_t kThreads = 3;
constexpr std::size_t kOpsPerThread = 4;
constexpr std::uint64_t kMaxSweep = 96;  // sample cap for long event streams

bool elide_enabled() { return nvc::env_int("NVC_ELIDE", 1) != 0; }

std::string elide_env() {
  return elide_enabled() ? std::string() : std::string("NVC_ELIDE=0");
}

struct RunOutcome {
  std::vector<Op> history;  // already cut at the freeze event
  std::uint64_t events = 0;
  std::uint64_t elisions = 0;
  std::size_t table_pending = 0;
  QueueModel::State queue_recovered;
  MapModel::State map_recovered;
};

// One deterministic execution: (structure, seed, freeze) fully determine
// the interleaving, the history, and the durable image.
template <typename MakeStructure, typename OpBody>
RunOutcome run_case(std::uint64_t seed, std::uint64_t freeze,
                    bool bug_early_untag, MakeStructure make, OpBody op_body) {
  ShadowPSpace ps(512 * 1024, elide_enabled());
  ps.set_bug_early_untag(bug_early_untag);
  ps.freeze_at(freeze);
  InterleaveScheduler sched(seed);
  ps.set_yield_hook(sched.hook());
  HistoryRecorder rec(kThreads, [&ps] { return ps.claim_event(); });

  auto structure = make(ps);
  std::vector<std::function<void(std::size_t)>> bodies;
  for (std::size_t i = 0; i < kThreads; ++i) {
    bodies.push_back([&, i, seed](std::size_t) {
      Rng rng(seed ^ (0x9E3779B9ULL * (i + 1)));
      for (std::size_t k = 0; k < kOpsPerThread; ++k) {
        op_body(*structure, rec, i, k, rng);
      }
    });
  }
  sched.run(bodies);

  RunOutcome out;
  out.events = ps.events();
  out.elisions = ps.helper_elisions();
  out.table_pending = ps.table().pending_count();
  out.history = rec.cut(freeze == kNoFreeze ? out.events + 1 : freeze);
  structure->fill_recovered(out);
  return out;
}

// Thin adapters so run_case can stay structure-agnostic.
struct QueueUnderTest {
  explicit QueueUnderTest(ShadowPSpace& ps) : q(ps) {}
  DurableQueue q;
  void fill_recovered(RunOutcome& out) const {
    for (const std::uint64_t v : q.recovered_contents()) {
      out.queue_recovered.push_back(v);
    }
  }
};

struct MapUnderTest {
  explicit MapUnderTest(ShadowPSpace& ps) : m(ps, 8) {}
  DurableMap m;
  void fill_recovered(RunOutcome& out) const {
    for (const auto& [k, v] : m.recovered_contents()) {
      out.map_recovered.emplace(k, v);
    }
  }
};

struct SkiplistUnderTest {
  explicit SkiplistUnderTest(ShadowPSpace& ps) : sl(ps) {}
  DurableSkiplist sl;
  void fill_recovered(RunOutcome& out) const {
    for (const auto& [k, v] : sl.recovered_contents()) {
      out.map_recovered.emplace(k, v);
    }
  }
};

void queue_op(QueueUnderTest& s, HistoryRecorder& rec, std::size_t thread,
              std::size_t k, Rng& rng) {
  if (rng.chance(0.6)) {
    const std::uint64_t v = 100 * (thread + 1) + k;
    const std::size_t op = rec.begin(thread, OpCode::kEnqueue, v);
    s.q.enqueue(v);
    rec.end(thread, op, true);
  } else {
    const std::size_t op = rec.begin(thread, OpCode::kDequeue, 0);
    std::uint64_t v = 0;
    const bool ok = s.q.dequeue(&v);
    rec.end(thread, op, ok, v);
  }
}

template <typename S>
void map_like_op(S& structure, HistoryRecorder& rec, std::size_t thread,
                 std::size_t k, Rng& rng) {
  const std::uint64_t key = 1 + rng.below(5);  // heavy key contention
  switch (rng.below(3)) {
    case 0: {
      const std::uint64_t v = 100 * (thread + 1) + k;
      const std::size_t op = rec.begin(thread, OpCode::kInsert, key, v);
      rec.end(thread, op, structure.insert(key, v));
      break;
    }
    case 1: {
      const std::size_t op = rec.begin(thread, OpCode::kErase, key);
      std::uint64_t v = 0;
      const bool ok = structure.erase(key, &v);
      rec.end(thread, op, ok, v);
      break;
    }
    default: {
      const std::size_t op = rec.begin(thread, OpCode::kContains, key);
      std::uint64_t v = 0;
      const bool ok = structure.contains(key, &v);
      rec.end(thread, op, ok, v);
    }
  }
}

// The freeze events to try: exhaustive when the stream is short, a seeded
// sample (always including the extremes) otherwise.
std::vector<std::uint64_t> freeze_points(std::uint64_t events,
                                         std::uint64_t seed) {
  std::vector<std::uint64_t> out;
  const std::uint64_t pinned = static_cast<std::uint64_t>(
      nvc::env_int("NVC_FUZZ_FREEZE", -1));
  if (pinned != static_cast<std::uint64_t>(-1)) return {pinned};
  if (events <= kMaxSweep) {
    for (std::uint64_t e = 0; e <= events; ++e) out.push_back(e);
    return out;
  }
  out.push_back(0);
  out.push_back(events);
  Rng rng(seed ^ 0xF1EE5EEDULL);
  for (std::uint64_t i = 0; i + 2 < kMaxSweep; ++i) {
    out.push_back(rng.below(events));
  }
  return out;
}

std::vector<std::uint64_t> seed_plan() {
  const std::int64_t pinned = nvc::env_int("NVC_FUZZ_SEED", -1);
  if (pinned >= 0) return {static_cast<std::uint64_t>(pinned)};
  std::vector<std::uint64_t> seeds;
  const std::int64_t iters = nvc::env_int("NVC_FUZZ_ITERS", 3);
  for (std::int64_t i = 0; i < iters; ++i) {
    seeds.push_back(kBaseSeed + static_cast<std::uint64_t>(i));
  }
  return seeds;
}

bool struct_selected(const char* name) {
  const std::string want = nvc::env_str("NVC_FUZZ_STRUCT", "");
  return want.empty() || want == name;
}

template <typename Model, typename MakeStructure, typename OpBody>
void sweep_structure(const char* name, MakeStructure make, OpBody op_body,
                     const typename Model::State RunOutcome::*recovered) {
  if (!struct_selected(name)) GTEST_SKIP() << "filtered by NVC_FUZZ_STRUCT";
  std::uint64_t elisions_total = 0;
  for (const std::uint64_t seed : seed_plan()) {
    const RunOutcome dry =
        run_case(seed, kNoFreeze, /*bug=*/false, make, op_body);
    ASSERT_EQ(dry.table_pending, 0u)
        << "writer tags leaked; "
        << struct_replay_line(seed, name, dry.events, elide_env());
    const auto full = check_linearizable<Model>(dry.history);
    ASSERT_EQ(full.verdict, LinVerdict::kOk)
        << full.detail << "\n"
        << struct_replay_line(seed, name, dry.events, elide_env());
    elisions_total += dry.elisions;

    for (const std::uint64_t e : freeze_points(dry.events, seed)) {
      const RunOutcome cut =
          run_case(seed, e, /*bug=*/false, make, op_body);
      const auto verdict = check_durable<Model>(cut.history, cut.*recovered);
      ASSERT_NE(verdict.verdict, LinVerdict::kViolation)
          << verdict.detail << "\n"
          << struct_replay_line(seed, name, e, elide_env());
      EXPECT_NE(verdict.verdict, LinVerdict::kBudget)
          << "shrink the workload: the bounded search gave up; "
          << struct_replay_line(seed, name, e, elide_env());
    }
  }
  if (elide_enabled() && nvc::env_int("NVC_FUZZ_SEED", -1) < 0) {
    // Campaign coverage: the sweep must actually exercise elided helper
    // flushes, or the whole suite is vacuously green.
    EXPECT_GT(elisions_total, 0u) << "no elision ever fired for " << name;
  }
}

TEST(StructFuzz, QueueSurvivesEveryPowerCut) {
  sweep_structure<QueueModel>(
      "queue",
      [](ShadowPSpace& ps) { return std::make_unique<QueueUnderTest>(ps); },
      [](QueueUnderTest& s, HistoryRecorder& rec, std::size_t t,
         std::size_t k, Rng& rng) { queue_op(s, rec, t, k, rng); },
      &RunOutcome::queue_recovered);
}

TEST(StructFuzz, MapSurvivesEveryPowerCut) {
  sweep_structure<MapModel>(
      "map",
      [](ShadowPSpace& ps) { return std::make_unique<MapUnderTest>(ps); },
      [](MapUnderTest& s, HistoryRecorder& rec, std::size_t t, std::size_t k,
         Rng& rng) { map_like_op(s.m, rec, t, k, rng); },
      &RunOutcome::map_recovered);
}

TEST(StructFuzz, SkiplistSurvivesEveryPowerCut) {
  sweep_structure<MapModel>(
      "skiplist",
      [](ShadowPSpace& ps) {
        return std::make_unique<SkiplistUnderTest>(ps);
      },
      [](SkiplistUnderTest& s, HistoryRecorder& rec, std::size_t t,
         std::size_t k, Rng& rng) { map_like_op(s.sl, rec, t, k, rng); },
      &RunOutcome::map_recovered);
}

// The harness must have teeth: arm the seeded early-untag bug (the writer
// drops its flush-pending tag before the write-back — the reverted
// decrement on the FliT face) and demand a durable-linearizability
// violation somewhere in the sweep. A helper then elides a flush of a line
// that never reached media, completes an op on top of it, and some power
// cut strands that completed op's effect.
TEST(StructFuzz, SeededElisionBugIsCaught) {
  if (!elide_enabled()) {
    GTEST_SKIP() << "bug only manifests through elision (NVC_ELIDE=1)";
  }
  if (nvc::env_int("NVC_FUZZ_SEED", -1) >= 0 ||
      nvc::env_int("NVC_FUZZ_FREEZE", -1) >= 0 ||
      !nvc::env_str("NVC_FUZZ_STRUCT", "").empty()) {
    // Replay pins target the sweep tests above; this one needs its full
    // seed x freeze campaign to guarantee the violating schedule exists.
    GTEST_SKIP() << "NVC_FUZZ_* replay pin active";
  }
  auto make = [](ShadowPSpace& ps) {
    return std::make_unique<QueueUnderTest>(ps);
  };
  auto body = [](QueueUnderTest& s, HistoryRecorder& rec, std::size_t t,
                 std::size_t k, Rng& rng) { queue_op(s, rec, t, k, rng); };
  bool caught = false;
  std::string witness;
  for (std::uint64_t i = 0; i < 48 && !caught; ++i) {
    const std::uint64_t seed = kBaseSeed + i;
    const RunOutcome dry = run_case(seed, kNoFreeze, /*bug=*/true, make, body);
    for (const std::uint64_t e : freeze_points(dry.events, seed)) {
      const RunOutcome cut = run_case(seed, e, /*bug=*/true, make, body);
      const auto verdict =
          check_durable<QueueModel>(cut.history, cut.queue_recovered);
      if (verdict.verdict == LinVerdict::kViolation) {
        caught = true;
        witness = struct_replay_line(seed, "queue", e, elide_env());
        break;
      }
    }
  }
  EXPECT_TRUE(caught)
      << "the durable-linearizability oracle missed the seeded elision bug";
  if (caught) {
    // The replay line is the debugging contract: print it on success too so
    // the checker-validation path stays visibly wired.
    SUCCEED() << "caught; " << witness;
  }
}

}  // namespace
