// FlushElisionTable + PSpace elision protocol tests (`ctest -L structures`).
//
// Three tiers:
//   - table unit tests: both faces (FliT tag/untag/pending, dedup
//     announce/retire), collision fallback conservatism, the seeded
//     revert-retire bug hook, pending_count() quiescence probe;
//   - the exactly-once property sweep: seeded turnstile interleavings of
//     writers + helpers over a HeapPSpace, asserting every dirty line hits
//     media EXACTLY once with elision on (cross-checked against the shared
//     WearTracker) and exactly 1 + helpers times with elision off;
//   - the mid-helping freeze regression: on ShadowPmem, sweep power cuts
//     across a helper that ELIDED a flush and then durably published a
//     dependent value — whenever the dependent is durable the elided
//     antecedent must be too. With the seeded early-untag protocol bug the
//     same sweep must find a violation (the checker has teeth).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "core/elision.hpp"
#include "pmem/wear.hpp"
#include "structures/pspace.hpp"
#include "testing/interleave.hpp"
#include "testing/seed.hpp"

namespace {

using nvc::core::FlushElisionTable;
using nvc::structures::HeapPSpace;
using nvc::structures::POffset;
using nvc::structures::ShadowPSpace;
using nvc::testing::InterleaveScheduler;
using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

using Tag = FlushElisionTable::Tag;
using Announce = FlushElisionTable::Announce;

// --- table unit tests --------------------------------------------------------

TEST(ElisionTable, TagRaisesPendingUntilUntag) {
  FlushElisionTable t;
  EXPECT_FALSE(t.pending(7));
  const Tag a = t.tag(7);
  EXPECT_TRUE(t.pending(7));
  EXPECT_FALSE(t.pending(8));
  const Tag b = t.tag(7);  // two writers mid-protocol
  t.untag(7, a);
  EXPECT_TRUE(t.pending(7));  // one write-back still in flight
  t.untag(7, b);
  EXPECT_FALSE(t.pending(7));
  EXPECT_EQ(t.pending_count(), 0u);
}

TEST(ElisionTable, CollisionFallbackIsConservativeForEveryLine) {
  // Two slots (the minimum): by pigeonhole some line among 2..63 hashes
  // into one of the occupied slots and falls back to the shared counter.
  FlushElisionTable t(/*slots=*/2);
  std::vector<std::pair<nvc::LineAddr, Tag>> held;
  held.emplace_back(1, t.tag(1));
  nvc::LineAddr collider = 0;
  Tag ctag = Tag::kSlot;
  for (nvc::LineAddr k = 2; k < 64; ++k) {
    const Tag tk = t.tag(k);
    if (tk == Tag::kShared) {
      collider = k;
      ctag = tk;
      break;
    }
    held.emplace_back(k, tk);
  }
  ASSERT_NE(collider, 0u) << "no collision in 2 slots?";
  // The shared fallback keeps pending() true for ALL lines: a collision may
  // only cause spurious helper flushes, never an unsound elision.
  EXPECT_TRUE(t.pending(collider));
  EXPECT_TRUE(t.pending(1));
  EXPECT_TRUE(t.pending(99));  // even a line nobody ever tagged
  t.untag(collider, ctag);
  EXPECT_FALSE(t.pending(99));  // shared fallback drained
  EXPECT_TRUE(t.pending(1));    // slot tags still pin their own lines
  for (const auto& [line, tag] : held) t.untag(line, tag);
  EXPECT_EQ(t.pending_count(), 0u);
}

TEST(ElisionTable, AnnounceRetireDedupesScheduledWriteBacks) {
  FlushElisionTable t;
  EXPECT_EQ(t.announce(5), Announce::kOwner);
  EXPECT_EQ(t.announce(5), Announce::kElided);
  EXPECT_EQ(t.announce(5), Announce::kElided);
  EXPECT_EQ(t.retire(5), 3u);  // one write satisfies all three
  EXPECT_EQ(t.retire(5), 0u);
  EXPECT_EQ(t.announce(5), Announce::kOwner);  // cycle restarts cleanly
  EXPECT_EQ(t.retire(5), 1u);
  EXPECT_EQ(t.pending_count(), 0u);
}

TEST(ElisionTable, RevertRetireBugLeavesThePendingCountStuck) {
  FlushElisionTable t;
  t.set_bug_revert_retire(true);
  EXPECT_EQ(t.announce(9), Announce::kOwner);
  EXPECT_EQ(t.retire(9), 1u);  // reports, but the decrement is reverted
  // The quiescence probe is exactly what catches this in the fuzzer: the
  // count never drains, and later announces elide against a write-back
  // that no longer exists.
  EXPECT_GT(t.pending_count(), 0u);
  EXPECT_EQ(t.announce(9), Announce::kElided);
}

// --- exactly-once property sweep (seeded interleavings) ----------------------

struct SweepResult {
  std::uint64_t media_writes;
  std::uint64_t helper_flushes;
  std::uint64_t helper_elisions;
};

// kThreads writers each dirty kLinesPer private lines and persist them
// (writer protocol), then publish "done". Each thread then HELPS its
// neighbour's lines — strictly after observing done, so every tagged
// write-back completed and elision is legal at every one of them.
SweepResult run_writer_helper_sweep(std::uint64_t seed, bool elide,
                                    nvc::pmem::WearTracker* wear,
                                    std::vector<nvc::LineAddr>* dirty) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kLinesPer = 8;
  HeapPSpace ps(64 * 1024, elide, wear);
  InterleaveScheduler sched(seed);
  ps.set_yield_hook(sched.hook());

  std::vector<std::vector<POffset>> lines(kThreads);
  for (auto& mine : lines) {
    for (std::size_t l = 0; l < kLinesPer; ++l) {
      mine.push_back(ps.alloc_lines(1));
    }
  }
  std::vector<std::atomic<bool>> done(kThreads);
  for (auto& d : done) d.store(false);

  std::vector<std::function<void(std::size_t)>> bodies;
  for (std::size_t i = 0; i < kThreads; ++i) {
    bodies.push_back([&, i](std::size_t) {
      for (const POffset off : lines[i]) {
        ps.word(off).store(0xD1A7 + i, std::memory_order_release);
        ps.persist(off, sizeof(std::uint64_t));
      }
      done[i].store(true, std::memory_order_release);
      const std::size_t peer = (i + 1) % kThreads;
      while (!done[peer].load(std::memory_order_acquire)) ps.yield();
      for (const POffset off : lines[peer]) {
        ps.persist_help(off, sizeof(std::uint64_t));
      }
    });
  }
  sched.run(bodies);

  EXPECT_EQ(ps.table().pending_count(), 0u) << "writer tags leaked";
  if (dirty != nullptr) {
    for (const auto& mine : lines) {
      for (const POffset off : mine) dirty->push_back(nvc::line_of(off));
    }
  }
  return {ps.media_writes(), ps.helper_flushes(), ps.helper_elisions()};
}

TEST(ElisionProperty, ExactlyOnceWriteBackPerDirtyLine) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int iter = 0; iter < 16; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    nvc::pmem::WearTracker wear;
    std::vector<nvc::LineAddr> dirty;
    const SweepResult r =
        run_writer_helper_sweep(seed, /*elide=*/true, &wear, &dirty);
    // Helping happens strictly after the writer finished, so EVERY help is
    // an elision and every dirty line reaches media exactly once — under
    // every interleaving the turnstile can produce.
    EXPECT_EQ(r.helper_flushes, 0u);
    EXPECT_EQ(r.helper_elisions, dirty.size());
    EXPECT_EQ(r.media_writes, dirty.size());
    EXPECT_EQ(wear.line_writes(), r.media_writes);  // cross-check
    for (const nvc::LineAddr line : dirty) {
      ASSERT_EQ(wear.line_write_count(line), 1u)
          << "line " << line << " written more than once";
    }
  }
}

TEST(ElisionProperty, DisablingElisionDoublesPerLineWriteBacks) {
  const std::uint64_t seed = seed_from_env("NVC_SEED", 20260808);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  nvc::pmem::WearTracker wear;
  std::vector<nvc::LineAddr> dirty;
  const SweepResult r =
      run_writer_helper_sweep(seed, /*elide=*/false, &wear, &dirty);
  EXPECT_EQ(r.helper_elisions, 0u);
  EXPECT_EQ(r.helper_flushes, dirty.size());
  EXPECT_EQ(r.media_writes, 2 * dirty.size());  // writer + helper, per line
  for (const nvc::LineAddr line : dirty) {
    EXPECT_EQ(wear.line_write_count(line), 2u);
  }
}

// --- mid-helping freeze regression (ShadowPmem) ------------------------------

constexpr std::uint64_t kAnte = 0xA17ECEDE;  // antecedent value (word X)
constexpr std::uint64_t kDep = 0xDE9E7DE7;   // dependent value (word Y)

struct FreezeProbe {
  std::uint64_t events;     // clock at the end of an unfrozen run
  std::uint64_t elisions;   // helper elisions observed
  std::uint64_t durable_x;  // durable image after the (frozen) run
  std::uint64_t durable_y;
};

// Writer publishes X via cas_persist; the helper waits until it SEES X
// (volatile), help-persists it (the elidable flush), then durably publishes
// the dependent Y. Elision soundness == at no power cut is Y durable
// while X is not.
FreezeProbe run_dependent_publish(std::uint64_t seed, bool bug_early_untag,
                                  std::uint64_t freeze_event) {
  ShadowPSpace ps(4 * 1024, /*elide=*/true);
  ps.set_bug_early_untag(bug_early_untag);
  ps.freeze_at(freeze_event);
  InterleaveScheduler sched(seed);
  ps.set_yield_hook(sched.hook());
  const POffset x = ps.alloc_lines(1);
  const POffset y = ps.alloc_lines(1);

  std::vector<std::function<void(std::size_t)>> bodies;
  bodies.push_back([&](std::size_t) { ps.cas_persist(x, 0, kAnte); });
  bodies.push_back([&](std::size_t) {
    while (ps.word(x).load(std::memory_order_acquire) != kAnte) ps.yield();
    ps.persist_help(x, sizeof(std::uint64_t));
    ps.cas_persist(y, 0, kDep);
  });
  sched.run(bodies);

  return {ps.events(), ps.helper_elisions(), ps.durable_u64(x),
          ps.durable_u64(y)};
}

TEST(ElisionRegression, FreezeAfterElidedHelpNeverStrandsTheDependent) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  std::uint64_t elisions_seen = 0;
  for (int iter = 0; iter < 32; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    const FreezeProbe dry =
        run_dependent_publish(seed, /*bug=*/false, ~std::uint64_t{0});
    elisions_seen += dry.elisions;
    for (std::uint64_t e = 0; e <= dry.events; ++e) {
      const FreezeProbe p = run_dependent_publish(seed, /*bug=*/false, e);
      if (p.durable_y == kDep) {
        ASSERT_EQ(p.durable_x, kAnte)
            << "power cut at event " << e
            << ": dependent durable but its elided antecedent is not";
      }
    }
  }
  // The sweep must actually exercise the elision path (some schedule lets
  // the helper probe only after the writer's write-back completed).
  EXPECT_GT(elisions_seen, 0u);
}

TEST(ElisionRegression, EarlyUntagBugIsCaughtByTheSameSweep) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  bool caught = false;
  for (int iter = 0; iter < 64 && !caught; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    const FreezeProbe dry =
        run_dependent_publish(seed, /*bug=*/true, ~std::uint64_t{0});
    for (std::uint64_t e = 0; e <= dry.events && !caught; ++e) {
      const FreezeProbe p = run_dependent_publish(seed, /*bug=*/true, e);
      if (p.durable_y == kDep && p.durable_x != kAnte) caught = true;
    }
  }
  // With tag dropped before the write-back, some schedule lets the helper
  // elide an unflushed line; some power cut then strands the dependent.
  // If this ever stops failing-the-invariant, the regression test itself
  // has gone blind — fail loudly.
  EXPECT_TRUE(caught)
      << "seeded early-untag bug produced no durability violation";
}

}  // namespace
