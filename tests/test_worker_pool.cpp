// Worker pools (DESIGN.md §11): topology probe and placement, pool sizing
// from the environment, round-robin channel homes, N-producer × M-worker
// exactly-once retirement, and the work-stealing drain. Runs under the
// `tsan` and `pool` ctest labels — configure with -DNVC_SANITIZE=thread to
// check the cross-worker handoffs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cpu.hpp"
#include "core/analyzer.hpp"
#include "core/flush_pipeline.hpp"
#include "core/thread_groups.hpp"

namespace nvc::core {
namespace {

struct RecordingSink final : FlushSink {
  bool flush_line(LineAddr line) override {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
    return true;
  }
  void drain() override {}
  std::vector<LineAddr> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
  mutable std::mutex mutex;
  std::vector<LineAddr> lines;
};

struct ForwardSink final : FlushSink {
  explicit ForwardSink(FlushSink* t) : target(t) {}
  bool flush_line(LineAddr line) override { return target->flush_line(line); }
  void drain() override { target->drain(); }
  FlushSink* target;
};

/// First flush parks until released — wedges whichever consumer pops it
/// while it holds the channel's consumer lock.
struct GateSink final : FlushSink {
  explicit GateSink(FlushSink* t) : target(t) {}
  bool flush_line(LineAddr line) override {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return target->flush_line(line);
  }
  void drain() override {}
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  FlushSink* target;
};

bool wait_until(const std::function<bool()>& done,
                std::chrono::seconds budget = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// --- topology + placement ---------------------------------------------------

TEST(CpuTopologyProbe, CachedProbeIsSane) {
  const CpuTopology& topo = cpu_topology();
  EXPECT_GE(topo.logical_cpus, 1);
  EXPECT_GE(topo.numa_nodes, 1);
  ASSERT_EQ(topo.cpu_node.size(), static_cast<std::size_t>(topo.logical_cpus));
  for (int node : topo.cpu_node) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, topo.numa_nodes);
  }
  EXPECT_EQ(topo.can_spin(), topo.logical_cpus > 1);
  // Same cached object every call — the probe must not re-run per query.
  EXPECT_EQ(&cpu_topology(), &topo);
}

TEST(Placement, WorkersFillNodesInNodeMajorOrder) {
  CpuTopology topo;
  topo.logical_cpus = 8;
  topo.numa_nodes = 2;
  topo.cpu_node = {0, 0, 1, 1, 0, 0, 1, 1};  // interleaved numbering
  const ShardPlacement p = place_workers(4, topo);
  ASSERT_EQ(p.worker_cpu.size(), 4u);
  // Node 0 owns cpus {0,1,4,5}; a 4-worker pool stays entirely on node 0.
  EXPECT_EQ(p.worker_cpu, (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(p.worker_node, (std::vector<int>{0, 0, 0, 0}));
}

TEST(Placement, PoolLargerThanMachineWraps) {
  CpuTopology topo;
  topo.logical_cpus = 2;
  topo.numa_nodes = 1;
  topo.cpu_node = {0, 0};
  const ShardPlacement p = place_workers(5, topo);
  EXPECT_EQ(p.worker_cpu, (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(Placement, ShardsBlockDistributeOverWorkers) {
  EXPECT_EQ(place_shards(8, 2),
            (std::vector<std::size_t>{0, 0, 0, 0, 1, 1, 1, 1}));
  EXPECT_EQ(place_shards(5, 2), (std::vector<std::size_t>{0, 0, 0, 1, 1}));
  // Homes are monotone and in range even when shards < workers.
  const auto sparse = place_shards(3, 8);
  EXPECT_TRUE(std::is_sorted(sparse.begin(), sparse.end()));
  for (std::size_t h : sparse) EXPECT_LT(h, 8u);
}

// --- pool sizing ------------------------------------------------------------

TEST(FlushPool, EnvironmentSizesDefaultConstructedPool) {
  ASSERT_EQ(setenv("NVC_FLUSH_WORKERS", "3", 1), 0);
  {
    FlushWorker pool;
    EXPECT_EQ(pool.pool_size(), 3u);
  }
  // 0 = auto: one worker per NUMA node.
  ASSERT_EQ(setenv("NVC_FLUSH_WORKERS", "0", 1), 0);
  {
    FlushWorker pool;
    EXPECT_EQ(pool.pool_size(),
              static_cast<std::size_t>(cpu_topology().numa_nodes));
  }
  ASSERT_EQ(unsetenv("NVC_FLUSH_WORKERS"), 0);
  FlushWorker pool;
  EXPECT_EQ(pool.pool_size(), 1u);  // default stays the single worker
}

TEST(FlushPool, ChannelsHomeRoundRobin) {
  FlushWorker pool(3);
  RecordingSink record;
  std::vector<std::shared_ptr<FlushChannel>> channels;
  for (int i = 0; i < 5; ++i) {
    channels.push_back(
        pool.open_channel(std::make_unique<ForwardSink>(&record), 16));
  }
  EXPECT_EQ(channels[0]->home(), 0u);
  EXPECT_EQ(channels[1]->home(), 1u);
  EXPECT_EQ(channels[2]->home(), 2u);
  EXPECT_EQ(channels[3]->home(), 0u);
  EXPECT_EQ(channels[4]->home(), 1u);
  for (auto& ch : channels) ch->close();
}

// --- exactly-once under N producers × M workers ------------------------------

TEST(FlushPool, ProducersTimesWorkersRetireEveryLineExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kLinesEach = 512;
  FlushWorker pool(4);
  RecordingSink record;

  std::vector<std::thread> producers;
  std::vector<std::shared_ptr<FlushChannel>> channels(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    channels[p] = pool.open_channel(std::make_unique<ForwardSink>(&record), 64);
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto& ch = *channels[p];
      for (std::uint64_t i = 0; i < kLinesEach; ++i) {
        const LineAddr tag = (static_cast<LineAddr>(p) << 32) | i;
        while (!ch.try_push(tag)) {
          ch.request_wake();  // ring full: let consumers catch up
          std::this_thread::yield();
        }
        if (ch.depth() >= 32) ch.request_wake();
      }
      ch.wait_drained();
    });
  }
  for (auto& t : producers) t.join();

  for (std::size_t p = 0; p < kProducers; ++p) {
    // Release-published stats: pushed == flushed visible from this thread.
    EXPECT_EQ(channels[p]->flushed(), kLinesEach);
    EXPECT_EQ(channels[p]->pushed(), kLinesEach);
    channels[p]->close();
  }
  auto lines = record.snapshot();
  ASSERT_EQ(lines.size(), kProducers * kLinesEach);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(std::adjacent_find(lines.begin(), lines.end()), lines.end())
      << "a line was flushed twice";
}

// --- work stealing ----------------------------------------------------------

TEST(FlushPool, IdleWorkerStealsWedgedHomesBacklog) {
  FlushWorker pool(2);
  RecordingSink record;
  auto gate_sink = std::make_unique<GateSink>(&record);
  GateSink* gate = gate_sink.get();
  auto wedged = pool.open_channel(std::move(gate_sink), 16);   // home 0
  auto other = pool.open_channel(std::make_unique<ForwardSink>(&record), 16);
  auto victim = pool.open_channel(std::make_unique<ForwardSink>(&record), 16);
  ASSERT_EQ(wedged->home(), 0u);
  ASSERT_EQ(other->home(), 1u);
  ASSERT_EQ(victim->home(), 0u);

  // Wedge worker 0 inside the gated flush of its own channel.
  ASSERT_TRUE(wedged->try_push(1));
  wedged->request_wake();
  ASSERT_TRUE(wait_until(
      [&] { return gate->entered.load(std::memory_order_acquire); }))
      << "worker 0 never picked up the gated line";

  // Backlog on a channel homed on the wedged worker; nobody drains it on
  // the producer side, so only worker 1's steal sweep can retire it.
  constexpr std::uint64_t kStolen = 8;
  for (LineAddr l = 100; l < 100 + kStolen; ++l) {
    ASSERT_TRUE(victim->try_push(l));
  }
  victim->request_wake();
  ASSERT_TRUE(wait_until([&] { return victim->flushed() == kStolen; }))
      << "idle worker never stole the wedged home's backlog";
  EXPECT_GE(pool.steals(), kStolen);
  EXPECT_EQ(victim->last_flush_worker(), 1u);

  gate->release.store(true, std::memory_order_release);
  wedged->wait_drained();
  EXPECT_EQ(wedged->flushed(), 1u);
  for (auto* ch : {&other, &victim}) {
    (*ch)->wait_drained();
    (*ch)->close();
  }
  wedged->close();
}

TEST(FlushPool, SingleWorkerPoolNeverSteals) {
  FlushWorker pool(1);
  RecordingSink record;
  auto a = pool.open_channel(std::make_unique<ForwardSink>(&record), 16);
  auto b = pool.open_channel(std::make_unique<ForwardSink>(&record), 16);
  EXPECT_EQ(a->home(), 0u);
  EXPECT_EQ(b->home(), 0u);  // pool of one: every channel homes there
  for (LineAddr l = 1; l <= 8; ++l) {
    ASSERT_TRUE(a->try_push(l));
    ASSERT_TRUE(b->try_push(l + 100));
  }
  a->wait_drained();
  b->wait_drained();
  EXPECT_EQ(pool.steals(), 0u);
  a->close();
  b->close();
}

TEST(FlushPool, ManualChannelInvisibleToEveryPoolSize) {
  FlushWorker pool(4);
  RecordingSink record;
  auto manual =
      pool.open_manual_channel(std::make_unique<ForwardSink>(&record), 16);
  for (LineAddr l = 1; l <= 4; ++l) ASSERT_TRUE(manual->try_push(l));
  manual->request_wake();  // no-op by contract
  pool.poke();             // even an explicit poke must not reach it
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(manual->flushed(), 0u) << "a pool worker swept a manual channel";
  // The deterministic scheduler's pump attributes to a *virtual* worker.
  EXPECT_TRUE(manual->pump_one(2));
  EXPECT_EQ(manual->flushed(), 1u);
  EXPECT_EQ(manual->last_flush_worker(), 2u);
  manual->wait_drained();
  manual->close();
}

// --- analysis pool ----------------------------------------------------------

std::vector<LineAddr> dense_burst(std::size_t length, LineAddr working_set) {
  std::vector<LineAddr> trace(length);
  for (std::size_t i = 0; i < length; ++i) {
    trace[i] = static_cast<LineAddr>(i) % working_set;
  }
  return trace;
}

TEST(AnalysisPool, EnvironmentSizesDefaultConstructedPool) {
  ASSERT_EQ(setenv("NVC_ANALYSIS_WORKERS", "2", 1), 0);
  {
    AnalysisWorker pool;
    EXPECT_EQ(pool.pool_size(), 2u);
  }
  ASSERT_EQ(unsetenv("NVC_ANALYSIS_WORKERS"), 0);
  AnalysisWorker pool;
  EXPECT_EQ(pool.pool_size(), 1u);
}

TEST(AnalysisPool, PooledChannelsCompleteEverySubmission) {
  AnalysisWorker pool(2);
  auto ch0 = pool.open_channel();
  auto ch1 = pool.open_channel();
  EXPECT_EQ(ch0->home(), 0u);
  EXPECT_EQ(ch1->home(), 1u);

  constexpr int kJobs = 6;
  std::thread p0([&] {
    for (int j = 0; j < kJobs; ++j) {
      auto burst = dense_burst(256, 16);
      while (!ch0->submit(std::move(burst), KneeConfig{})) {
        std::this_thread::yield();
      }
    }
    ch0->drain();
  });
  std::thread p1([&] {
    for (int j = 0; j < kJobs; ++j) {
      auto burst = dense_burst(256, 8);
      while (!ch1->submit(std::move(burst), KneeConfig{})) {
        std::this_thread::yield();
      }
    }
    ch1->drain();
  });
  p0.join();
  p1.join();

  EXPECT_TRUE(ch0->idle());
  EXPECT_TRUE(ch1->idle());
  EXPECT_EQ(ch0->completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(ch1->completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_TRUE(ch0->take_result().has_value());
  EXPECT_TRUE(ch1->take_result().has_value());
  EXPECT_EQ(pool.analyses_run(), static_cast<std::uint64_t>(2 * kJobs));
  ch0->close();
  ch1->close();
}

TEST(AnalysisPool, ManualPumpRecordsVirtualWorker) {
  AnalysisWorker pool(4);
  auto manual = pool.open_manual_channel();
  auto burst = dense_burst(128, 8);
  ASSERT_TRUE(manual->submit(std::move(burst), KneeConfig{}));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(manual->completed(), 0u) << "a pool worker served a manual channel";
  EXPECT_TRUE(manual->pump_one(3));
  EXPECT_EQ(manual->completed(), 1u);
  EXPECT_EQ(manual->last_analysis_worker(), 3u);
  manual->close();
}

}  // namespace
}  // namespace nvc::core
