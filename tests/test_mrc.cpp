// Tests for MRC construction: the reuse-theory model (Eq. 3), exact LRU via
// Mattson stack distances, and direct WriteCache simulation with FASE
// clearing — plus cross-validation between the three.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "core/fase_trace.hpp"
#include "core/mrc.hpp"
#include "core/write_cache.hpp"
#include "testing/seed.hpp"

namespace nvc::core {
namespace {

using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

// --- exact LRU reference -----------------------------------------------------------

/// O(n * c) reference simulator: a plain LRU list per cache size.
double reference_lru_miss_ratio(const std::vector<LineAddr>& trace,
                                std::size_t size) {
  std::deque<LineAddr> lru;
  std::uint64_t misses = 0;
  for (const LineAddr a : trace) {
    auto it = std::find(lru.begin(), lru.end(), a);
    if (it != lru.end()) {
      lru.erase(it);
    } else {
      ++misses;
      if (lru.size() == size) lru.pop_back();
    }
    lru.push_front(a);
  }
  return static_cast<double>(misses) / static_cast<double>(trace.size());
}

TEST(MrcExactLru, MatchesReferenceSimulatorOnRandomTraces) {
  const std::uint64_t seed = seed_from_env("NVC_SEED", 21);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  for (int round = 0; round < 5; ++round) {
    std::vector<LineAddr> trace;
    for (int i = 0; i < 500; ++i) trace.push_back(rng.below(30));
    const Mrc mrc = mrc_exact_lru(trace, 40);
    for (std::size_t c : {1u, 2u, 5u, 10u, 23u, 30u, 40u}) {
      EXPECT_NEAR(mrc.at(c), reference_lru_miss_ratio(trace, c), 1e-12)
          << "size " << c;
    }
  }
}

TEST(MrcExactLru, LoopPatternHasSharpKnee) {
  // Cyclic sweep over 10 lines: LRU misses at every size < 10, hits fully
  // at size >= 10.
  std::vector<LineAddr> trace;
  for (int rep = 0; rep < 100; ++rep) {
    for (LineAddr a = 0; a < 10; ++a) trace.push_back(a);
  }
  const Mrc mrc = mrc_exact_lru(trace, 20);
  EXPECT_GT(mrc.at(9), 0.99);  // classic LRU loop pathology
  EXPECT_LT(mrc.at(10), 0.02);  // only cold misses remain
}

TEST(MrcExactLru, MonotoneInSize) {
  const std::uint64_t seed = seed_from_env("NVC_SEED", 8);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    trace.push_back(static_cast<LineAddr>(u * u * 50));
  }
  const Mrc mrc = mrc_exact_lru(trace, 50);
  for (std::size_t c = 2; c <= 50; ++c) {
    EXPECT_LE(mrc.at(c), mrc.at(c - 1) + 1e-12);
  }
}

// --- reuse-model MRC -----------------------------------------------------------------

TEST(MrcFromReuse, PerfectlyCacheableTrace) {
  // "aaaa...": hit ratio 1 at size 1 (after the cold miss).
  std::vector<LineAddr> trace(200, 7);
  const auto reuse =
      compute_reuse_all_k(intervals_of_trace(trace),
                          static_cast<LogicalTime>(trace.size()));
  const Mrc mrc = mrc_from_reuse(reuse, 10);
  EXPECT_LT(mrc.at(1), 0.05);
}

TEST(MrcFromReuse, StreamingTraceNeverHits) {
  // All-distinct addresses: miss ratio 1 at every size.
  std::vector<LineAddr> trace;
  for (LineAddr a = 0; a < 300; ++a) trace.push_back(a);
  const auto reuse =
      compute_reuse_all_k(intervals_of_trace(trace),
                          static_cast<LogicalTime>(trace.size()));
  const Mrc mrc = mrc_from_reuse(reuse, 50);
  for (std::size_t c = 1; c <= 50; ++c) {
    EXPECT_DOUBLE_EQ(mrc.at(c), 1.0);
  }
}

TEST(MrcFromReuse, ApproximatesExactLruAtTheKnee) {
  // The HOTL conversion is an average-case model; on a working-set trace it
  // must place the knee where exact LRU places it.
  const std::uint64_t seed = seed_from_env("NVC_SEED", 10);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  for (int rep = 0; rep < 400; ++rep) {
    for (LineAddr a = 0; a < 12; ++a) {
      trace.push_back(a);
      if (rng.chance(0.05)) trace.push_back(rng.below(200) + 100);
    }
  }
  const auto reuse = compute_reuse_all_k(
      intervals_of_trace(trace), static_cast<LogicalTime>(trace.size()));
  const Mrc model = mrc_from_reuse(reuse, 40);
  // Above the working set the model must report a low miss ratio...
  EXPECT_LT(model.at(20), 0.25);
  // ...and a clearly higher one far below it.
  EXPECT_GT(model.at(2), model.at(20) + 0.2);
}

TEST(MrcFromReuse, CurveIsNonIncreasingAndBounded) {
  const std::uint64_t seed = seed_from_env("NVC_SEED", 55);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 3000; ++i) trace.push_back(rng.below(60));
  const auto reuse = compute_reuse_all_k(
      intervals_of_trace(trace), static_cast<LogicalTime>(trace.size()));
  const Mrc mrc = mrc_from_reuse(reuse, 50);
  for (std::size_t c = 1; c <= 50; ++c) {
    EXPECT_GE(mrc.at(c), 0.0);
    EXPECT_LE(mrc.at(c), 1.0);
    if (c > 1) {
      EXPECT_LE(mrc.at(c), mrc.at(c - 1) + 1e-12);
    }
  }
}

TEST(Mrc, GradientIsDropBetweenAdjacentSizes) {
  Mrc mrc(std::vector<double>{0.9, 0.5, 0.45, 0.45});
  EXPECT_DOUBLE_EQ(mrc.gradient(2), 0.4);
  EXPECT_NEAR(mrc.gradient(3), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(mrc.gradient(4), 0.0);
}

// --- WriteCache simulation (the "actual" MRC of Fig. 7) --------------------------------

TEST(MrcSimulate, FlushRatioEqualsMissRatio) {
  // Invariant: in the write-combining cache, every miss leads to exactly
  // one flush, so simulated miss ratio == flush ratio.
  const std::uint64_t seed = seed_from_env("NVC_SEED", 3);
  SCOPED_TRACE(replay_hint("NVC_SEED", seed));
  Rng rng(seed);
  std::vector<LineAddr> trace;
  std::vector<std::size_t> boundaries;
  for (int f = 0; f < 40; ++f) {
    for (int i = 0; i < 50; ++i) trace.push_back(rng.below(15));
    boundaries.push_back(trace.size());
  }
  const Mrc sim = mrc_simulate_write_cache(trace, boundaries, 30);

  // Independent check at one size via manual counting.
  WriteCache cache(10);
  CountingSink sink;
  std::size_t bi = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    while (bi < boundaries.size() && boundaries[bi] == i) {
      cache.flush_all(sink);
      ++bi;
    }
    cache.access(trace[i], sink);
  }
  cache.flush_all(sink);
  const double flush_ratio =
      static_cast<double>(sink.count()) / static_cast<double>(trace.size());
  EXPECT_NEAR(sim.at(10), flush_ratio, 1e-12);
}

TEST(MrcSimulate, FaseClearingRaisesMissRatio) {
  // The same address stream with per-iteration FASE boundaries must miss
  // more than without boundaries (cross-FASE reuses are invalidated).
  std::vector<LineAddr> trace;
  std::vector<std::size_t> per_iter_boundaries;
  for (int rep = 0; rep < 100; ++rep) {
    trace.push_back(1);
    trace.push_back(2);
    per_iter_boundaries.push_back(trace.size());
  }
  const Mrc with_fases =
      mrc_simulate_write_cache(trace, per_iter_boundaries, 4);
  const Mrc without = mrc_simulate_write_cache(trace, {}, 4);
  EXPECT_GT(with_fases.at(4), 0.95);  // every write is a compulsory miss
  EXPECT_LT(without.at(4), 0.05);
}

TEST(MrcModelVsSimulation, AgreeOnFaseRenamedTrace) {
  // End-to-end: FASE renaming + reuse model vs direct simulation. The model
  // is approximate, but on a regular working-set trace they must agree
  // within a few percent at every size.
  std::vector<LineAddr> trace;
  std::vector<std::size_t> boundaries;
  for (int f = 0; f < 60; ++f) {
    for (int rep = 0; rep < 6; ++rep) {
      for (LineAddr a = 0; a < 8; ++a) trace.push_back(a);
    }
    boundaries.push_back(trace.size());
  }
  const auto renamed = rename_trace(trace, boundaries);
  const auto reuse = compute_reuse_all_k(
      intervals_of_trace(renamed), static_cast<LogicalTime>(renamed.size()));
  const Mrc model = mrc_from_reuse(reuse, 20);
  const Mrc sim = mrc_simulate_write_cache(trace, boundaries, 20);
  for (std::size_t c = 1; c <= 20; ++c) {
    EXPECT_NEAR(model.at(c), sim.at(c), 0.08) << "size " << c;
  }
}

}  // namespace
}  // namespace nvc::core
