// Crash matrix for the undo-log durability protocols (DESIGN.md §7).
//
// A miniature FASE engine — SC-offline policy + LogOrderedSink + UndoLog —
// runs against the ShadowPmem crash model with both the data region and the
// log segment living inside the shadow image. The durable image is frozen
// at EVERY event index in the run (each pstore and each attempted line
// flush, on either the data or the log path), which sweeps all the
// interesting boundaries: before a log sync, after the sync but before the
// data flush it ordered, mid data-flush burst, after the flushes but before
// commit, and after commit. For each freeze point the test restarts from
// the durable image, runs log recovery, and asserts the data region equals
// the state after SOME committed FASE — the all-or-nothing guarantee.
//
// A separate test checks strict/batched equivalence: same script, identical
// recovered-equivalent durable data images and identical data-flush counts,
// with batched issuing strictly fewer log fences.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/log_ordered_sink.hpp"
#include "core/policy.hpp"
#include "pmem/shadow.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {
namespace {

constexpr std::size_t kDataLines = 8;
constexpr std::size_t kDataBytes = kDataLines * kCacheLineSize;
constexpr std::size_t kCells = kDataBytes / sizeof(std::uint64_t);
constexpr std::size_t kLogOff = kDataBytes;  // 64-aligned: right after data
constexpr std::size_t kLogBytes = 32u << 10;
constexpr std::size_t kShadowBytes = kLogOff + kLogBytes;
constexpr int kFases = 8;
constexpr int kStoresPerFase = 6;

using DataImage = std::array<std::uint64_t, kCells>;

/// One FASE engine instance over a private shadow NVRAM. Layout:
/// [0, kDataBytes) data cells, [kLogOff, kLogOff+kLogBytes) log segment.
class CrashRig {
 public:
  explicit CrashRig(LogSyncMode mode)
      : mode_(mode),
        shadow_(kShadowBytes),
        log_shift_(line_of(reinterpret_cast<PmAddr>(shadow_.volatile_base()))),
        data_sink_(this, /*shift=*/0),
        log_sink_(this, log_shift_) {
    core::PolicyConfig pc;
    pc.cache_size = 2;  // tiny: forces mid-FASE evictions => many epochs
    policy_ = core::make_policy(core::PolicyKind::kSoftCacheOffline, pc);
    log_ = std::make_unique<UndoLog>(shadow_.volatile_base() + kLogOff,
                                     kLogBytes, &log_sink_, mode_);
    log_->format();  // pre-script: not an event, cannot be frozen away
    ordered_ = std::make_unique<core::LogOrderedSink>(&data_sink_, log_.get());
    counting_ = true;
  }

  /// Power fails once `events()` reaches `event`: later flushes are lost.
  void freeze_at(std::uint64_t event) { freeze_event_ = event; }
  std::uint64_t events() const noexcept { return events_; }
  std::uint64_t data_flushes() const noexcept { return data_sink_.flushes; }
  std::uint64_t log_fences() const noexcept { return log_sink_.fences; }

  void fase_begin() { policy_->on_fase_begin(*ordered_); }

  void fase_end() {
    // Mirrors Runtime::fase_end: the policy flushes its buffered lines
    // through the ordering decorator (log sync precedes each data flush),
    // then the log commits — the FASE's atomic commit point.
    policy_->on_fase_end(*ordered_);
    log_->commit();
  }

  void pstore(std::size_t cell, std::uint64_t value) {
    const PmAddr addr = cell * sizeof(std::uint64_t);
    std::uint64_t old = shadow_.load_value<std::uint64_t>(addr);
    log_->record(addr, &old, sizeof old);
    shadow_.store_value(addr, value);
    bump();
    policy_->on_store(line_of(addr), *ordered_);
  }

  /// Restart after the (frozen) power failure: reload from the durable
  /// image, run log recovery, persist the rolled-back bytes, and return
  /// the durable data region a restarted process would see.
  DataImage recovered_data() {
    shadow_.crash();  // everything unflushed is gone
    LiveSink rsink(&shadow_, log_shift_);
    UndoLog log(shadow_.volatile_base() + kLogOff, kLogBytes, &rsink, mode_);
    EXPECT_TRUE(log.valid());  // format() preceded event counting
    if (log.needs_recovery()) {
      log.rollback(
          [&](std::uint64_t token, const void* bytes, std::uint32_t len) {
            shadow_.store(token, bytes, len);
          });
    }
    shadow_.flush_all();
    DataImage out;
    shadow_.load_durable(0, out.data(), sizeof out);
    return out;
  }

  DataImage durable_data() const {
    DataImage out;
    shadow_.load_durable(0, out.data(), sizeof out);
    return out;
  }

 private:
  /// Freezeable sink: pointer-based lines are translated to shadow-offset
  /// lines by `shift` (0 for the data path, whose lines already are shadow
  /// offsets; the log writes through raw pointers into the shadow image).
  struct FreezeSink final : core::FlushSink {
    FreezeSink(CrashRig* owner, LineAddr line_shift)
        : rig(owner), shift(line_shift) {}
    void flush_line(LineAddr line) override {
      ++flushes;
      rig->bump();
      if (rig->frozen()) return;  // power is off: the line never persists
      rig->shadow_.flush_line(line - shift);
    }
    void drain() override { ++fences; }
    CrashRig* rig;
    LineAddr shift;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
  };

  /// Recovery-time sink: never frozen (the machine is back up).
  struct LiveSink final : core::FlushSink {
    LiveSink(pmem::ShadowPmem* target, LineAddr line_shift)
        : shadow(target), shift(line_shift) {}
    void flush_line(LineAddr line) override {
      shadow->flush_line(line - shift);
    }
    void drain() override {}
    pmem::ShadowPmem* shadow;
    LineAddr shift;
  };

  void bump() {
    if (counting_) ++events_;
  }
  bool frozen() const noexcept { return events_ > freeze_event_; }

  LogSyncMode mode_;
  pmem::ShadowPmem shadow_;
  LineAddr log_shift_;
  FreezeSink data_sink_;
  FreezeSink log_sink_;
  std::unique_ptr<core::Policy> policy_;
  std::unique_ptr<UndoLog> log_;
  std::unique_ptr<core::LogOrderedSink> ordered_;
  bool counting_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t freeze_event_ = ~std::uint64_t{0};
};

/// Deterministic script; returns the expected data image after each
/// committed FASE (index 0 = the initial all-zero state).
std::vector<DataImage> run_script(CrashRig& rig) {
  std::vector<DataImage> snapshots;
  DataImage state{};
  snapshots.push_back(state);
  Rng rng(99);
  for (int f = 0; f < kFases; ++f) {
    rig.fase_begin();
    for (int s = 0; s < kStoresPerFase; ++s) {
      const std::size_t cell = rng.below(kCells);
      const std::uint64_t value = rng();
      rig.pstore(cell, value);
      state[cell] = value;
    }
    rig.fase_end();
    snapshots.push_back(state);
  }
  return snapshots;
}

int snapshot_index(const std::vector<DataImage>& snapshots,
                   const DataImage& image) {
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (snapshots[i] == image) return static_cast<int>(i);
  }
  return -1;
}

class CrashMatrix : public ::testing::TestWithParam<LogSyncMode> {};

TEST_P(CrashMatrix, EveryFreezePointRecoversToACommittedFase) {
  const LogSyncMode mode = GetParam();

  // Dry run: learn the event count and the expected per-FASE snapshots.
  CrashRig dry(mode);
  const auto snapshots = run_script(dry);
  const std::uint64_t total = dry.events();
  ASSERT_GT(total, 100u) << "script too small to exercise boundaries";

  int max_recovered = -1;
  for (std::uint64_t e = 0; e <= total; ++e) {
    CrashRig rig(mode);
    rig.freeze_at(e);
    (void)run_script(rig);
    const DataImage image = rig.recovered_data();
    const int idx = snapshot_index(snapshots, image);
    ASSERT_GE(idx, 0) << to_string(mode) << ": freeze at event " << e << "/"
                      << total
                      << " recovered a state matching no committed FASE";
    // Durability is monotone in the freeze point: a later crash can never
    // recover to an older committed state.
    ASSERT_GE(idx, max_recovered) << to_string(mode) << ": freeze " << e;
    max_recovered = std::max(max_recovered, idx);
  }
  // The unfrozen end of the sweep must have reached the final state.
  EXPECT_EQ(max_recovered, kFases);
}

INSTANTIATE_TEST_SUITE_P(BothModes, CrashMatrix,
                         ::testing::Values(LogSyncMode::kStrict,
                                           LogSyncMode::kBatched),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(CrashEquivalence, StrictAndBatchedConvergeWithFewerLogFences) {
  CrashRig strict(LogSyncMode::kStrict);
  const auto strict_snaps = run_script(strict);
  CrashRig batched(LogSyncMode::kBatched);
  const auto batched_snaps = run_script(batched);

  // Identical durable data images (no crash) and identical data-line flush
  // traffic — batching the log must not change what the policy persists.
  ASSERT_EQ(strict_snaps, batched_snaps);
  EXPECT_EQ(strict.durable_data(), batched.durable_data());
  EXPECT_EQ(strict.durable_data(), strict_snaps.back());
  EXPECT_EQ(strict.data_flushes(), batched.data_flushes());

  // The point of the exercise: O(records) => O(epochs) log fences.
  EXPECT_LT(batched.log_fences(), strict.log_fences());
  // Strict pays 2 fences per record plus 1 per commit (+1 from format()).
  EXPECT_EQ(strict.log_fences(),
            2u * kFases * kStoresPerFase + kFases + 1);
}

TEST(CrashEquivalence, BatchedRecoversIdenticallyToStrictAtSharedBoundaries) {
  // Freeze both modes at their respective FASE-commit boundaries (event
  // streams differ, so align on fractions of the run) and check both roll
  // forward/back to committed states.
  for (const double fraction : {0.25, 0.5, 0.75}) {
    DataImage images[2];
    int i = 0;
    for (const LogSyncMode mode :
         {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
      CrashRig dry(mode);
      const auto snapshots = run_script(dry);
      CrashRig rig(mode);
      rig.freeze_at(static_cast<std::uint64_t>(
          fraction * static_cast<double>(dry.events())));
      (void)run_script(rig);
      images[i] = rig.recovered_data();
      ASSERT_GE(snapshot_index(snapshots, images[i]), 0)
          << to_string(mode) << " at fraction " << fraction;
      ++i;
    }
  }
}

}  // namespace
}  // namespace nvc::runtime
