// Crash matrix for the undo-log durability protocols (DESIGN.md §7).
//
// The freeze/restart rig lives in tests/support/crash_rig.{hpp,cpp} (it is
// shared with the crash-state fuzzer, test_fuzz_crash.cpp); this suite
// drives it through a fixed script and sweeps the durable image's freeze
// point over EVERY event index in the run (each pstore and each attempted
// line flush, on either the data or the log path). That hits all the
// interesting boundaries: before a log sync, after the sync but before the
// data flush it ordered, mid data-flush burst, after the flushes but before
// commit, and after commit. For each freeze point the test restarts from
// the durable image, runs log recovery, and asserts the data region equals
// the state after SOME committed FASE — the all-or-nothing guarantee.
//
// A separate test checks strict/batched equivalence: same script, identical
// recovered-equivalent durable data images and identical data-flush counts,
// with batched issuing strictly fewer log fences.
//
// The async dimension runs the same engine with the flush-behind pipeline
// (core/flush_pipeline.hpp) in the data path: evicted lines queue in a ring
// popped by the background FlushWorker, so a freeze can land while lines
// are still queued — those write-backs claim later event indices and are
// dropped, exactly modeling power failing with writes still in flight. The
// sweep asserts recovery lands on a committed FASE at *every* freeze point,
// and an equivalence test asserts async data traffic is identical to sync.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "support/crash_rig.hpp"

namespace nvc::runtime {
namespace {

using nvc::testing::CrashRig;
using nvc::testing::CrashRigConfig;

constexpr std::size_t kDataLines = 8;
constexpr std::size_t kDataBytes = kDataLines * kCacheLineSize;
constexpr std::size_t kCells = kDataBytes / sizeof(std::uint64_t);
constexpr int kFases = 8;
constexpr int kStoresPerFase = 6;

using DataImage = std::array<std::uint64_t, kCells>;

CrashRigConfig matrix_config(LogSyncMode mode, bool async) {
  CrashRigConfig config;  // defaults match this suite's historical layout
  config.mode = mode;
  config.async_flush = async;
  config.data_lines = kDataLines;
  return config;
}

DataImage to_image(const std::vector<std::uint8_t>& bytes) {
  DataImage out;
  EXPECT_EQ(bytes.size(), sizeof out);
  std::memcpy(out.data(), bytes.data(), sizeof out);
  return out;
}

/// Deterministic script; returns the expected data image after each
/// committed FASE (index 0 = the initial all-zero state).
std::vector<DataImage> run_script(CrashRig& rig) {
  std::vector<DataImage> snapshots;
  DataImage state{};
  snapshots.push_back(state);
  Rng rng(99);
  for (int f = 0; f < kFases; ++f) {
    rig.fase_begin();
    for (int s = 0; s < kStoresPerFase; ++s) {
      const std::size_t cell = rng.below(kCells);
      const std::uint64_t value = rng();
      rig.pstore_u64(0, cell, value);
      state[cell] = value;
    }
    rig.fase_end();
    snapshots.push_back(state);
  }
  return snapshots;
}

int snapshot_index(const std::vector<DataImage>& snapshots,
                   const DataImage& image) {
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (snapshots[i] == image) return static_cast<int>(i);
  }
  return -1;
}

struct MatrixParam {
  LogSyncMode mode;
  bool async;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CrashMatrix, EveryFreezePointRecoversToACommittedFase) {
  const auto [mode, async] = GetParam();

  // Dry run: learn the event count and the expected per-FASE snapshots.
  CrashRig dry(matrix_config(mode, async));
  const auto snapshots = run_script(dry);
  const std::uint64_t total = dry.events();
  ASSERT_GT(total, 100u) << "script too small to exercise boundaries";

  // Async runs are nondeterministic in their event *indexing* (worker
  // write-backs race the application thread for slots, and each hazard
  // sync adds log flushes), so a run's total can exceed the dry run's;
  // sweep well past it so late freeze points are hit in any interleaving.
  const std::uint64_t sweep_end = async ? total + 256 : total;

  int max_recovered = -1;
  for (std::uint64_t e = 0; e <= sweep_end; ++e) {
    CrashRig rig(matrix_config(mode, async));
    rig.freeze_at(e);
    (void)run_script(rig);
    const DataImage image = to_image(rig.recovered_data());
    const int idx = snapshot_index(snapshots, image);
    ASSERT_GE(idx, 0) << to_string(mode) << (async ? "/async" : "/sync")
                      << ": freeze at event " << e << "/" << total
                      << " recovered a state matching no committed FASE";
    if (!async) {
      // Durability is monotone in the freeze point: a later crash can never
      // recover to an older committed state. (Async runs are separate
      // interleavings per freeze index, so cross-run monotonicity is not a
      // guarantee — all-or-nothing above is.)
      ASSERT_GE(idx, max_recovered) << to_string(mode) << ": freeze " << e;
    }
    max_recovered = std::max(max_recovered, idx);
  }
  // The unfrozen end of the sweep must have reached the final state.
  EXPECT_EQ(max_recovered, kFases);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CrashMatrix,
    ::testing::Values(MatrixParam{LogSyncMode::kStrict, false},
                      MatrixParam{LogSyncMode::kBatched, false},
                      MatrixParam{LogSyncMode::kStrict, true},
                      MatrixParam{LogSyncMode::kBatched, true}),
    [](const auto& param_info) {
      return std::string(to_string(param_info.param.mode)) +
             (param_info.param.async ? "Async" : "Sync");
    });

TEST(CrashEquivalence, StrictAndBatchedConvergeWithFewerLogFences) {
  CrashRig strict(matrix_config(LogSyncMode::kStrict, false));
  const auto strict_snaps = run_script(strict);
  CrashRig batched(matrix_config(LogSyncMode::kBatched, false));
  const auto batched_snaps = run_script(batched);

  // Identical durable data images (no crash) and identical data-line flush
  // traffic — batching the log must not change what the policy persists.
  ASSERT_EQ(strict_snaps, batched_snaps);
  EXPECT_EQ(strict.durable_data(), batched.durable_data());
  EXPECT_EQ(to_image(strict.durable_data()), strict_snaps.back());
  EXPECT_EQ(strict.data_flushes(), batched.data_flushes());

  // The point of the exercise: O(records) => O(epochs) log fences.
  EXPECT_LT(batched.log_fences(), strict.log_fences());
  // Strict pays 2 fences per record plus 1 per commit (+1 from format()).
  EXPECT_EQ(strict.log_fences(),
            2u * kFases * kStoresPerFase + kFases + 1);
}

TEST(CrashEquivalence, AsyncDataTrafficIsIdenticalToSync) {
  // The pipeline moves write-backs in time, never adds or drops any: for
  // both log protocols, the async engine must produce exactly the sync
  // engine's durable image, per-FASE snapshots, and data-flush count.
  for (const LogSyncMode mode :
       {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
    CrashRig sync_rig(matrix_config(mode, /*async=*/false));
    const auto sync_snaps = run_script(sync_rig);
    CrashRig async_rig(matrix_config(mode, /*async=*/true));
    const auto async_snaps = run_script(async_rig);
    ASSERT_EQ(sync_snaps, async_snaps) << to_string(mode);
    EXPECT_EQ(sync_rig.durable_data(), async_rig.durable_data())
        << to_string(mode);
    EXPECT_EQ(sync_rig.data_flushes(), async_rig.data_flushes())
        << to_string(mode);
  }
}

TEST(CrashTearBurst, MultiLineTearWindowKeepsAllOrNothing) {
  // The write-back burst racing the power cut may span SEVERAL lines (the
  // modeled write-queue depth, CrashRigConfig::tear_burst): a gapless run
  // of post-cut flushes freeze+1, freeze+2, ... each independently drops or
  // persists a torn prefix. Sweep every freeze point with tearing forced on
  // (torn_rate = 1) and assert the all-or-nothing oracle survives — torn
  // data lines are covered by undo records that were durable before the
  // flush, and torn log lines fail their check words, so neither can smuggle
  // uncommitted bytes past recovery. The sweep must also actually open a
  // multi-line window somewhere, or this test would be vacuous.
  for (const LogSyncMode mode :
       {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
    CrashRigConfig config = matrix_config(mode, false);
    config.fault.torn_rate = 1.0;
    config.fault.seed = 0x7ea2;

    CrashRig dry(config);
    const auto snapshots = run_script(dry);
    const std::uint64_t total = dry.events();
    EXPECT_EQ(dry.torn_flushes(), 0u) << "no power cut, nothing may tear";

    std::uint64_t max_torn = 0;
    for (std::uint64_t e = 0; e <= total; ++e) {
      CrashRig rig(config);
      rig.freeze_at(e);
      (void)run_script(rig);
      const DataImage image = to_image(rig.recovered_data());
      ASSERT_GE(snapshot_index(snapshots, image), 0)
          << to_string(mode) << ": freeze at event " << e << "/" << total
          << " with torn burst recovered a never-committed state ("
          << rig.torn_flushes() << " torn write-backs)";
      max_torn = std::max(max_torn, rig.torn_flushes());
    }
    EXPECT_GE(max_torn, 2u)
        << to_string(mode)
        << ": the sweep never opened a multi-line tear window";
  }
}

TEST(CrashTearBurst, DepthOneWindowNeverTearsTwice) {
  // tear_burst = 1 restores the historical model: only the single write-back
  // racing the cut may land torn.
  CrashRigConfig config = matrix_config(LogSyncMode::kBatched, false);
  config.fault.torn_rate = 1.0;
  config.fault.seed = 0x7ea2;
  config.tear_burst = 1;

  CrashRig dry(config);
  const auto snapshots = run_script(dry);
  for (std::uint64_t e = 0; e <= dry.events(); e += 7) {
    CrashRig rig(config);
    rig.freeze_at(e);
    (void)run_script(rig);
    EXPECT_LE(rig.torn_flushes(), 1u) << "freeze " << e;
    ASSERT_GE(snapshot_index(snapshots, to_image(rig.recovered_data())), 0)
        << "freeze " << e;
  }
}

TEST(CrashEquivalence, BatchedRecoversIdenticallyToStrictAtSharedBoundaries) {
  // Freeze both modes at their respective FASE-commit boundaries (event
  // streams differ, so align on fractions of the run) and check both roll
  // forward/back to committed states.
  for (const double fraction : {0.25, 0.5, 0.75}) {
    DataImage images[2];
    int i = 0;
    for (const LogSyncMode mode :
         {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
      CrashRig dry(matrix_config(mode, false));
      const auto snapshots = run_script(dry);
      CrashRig rig(matrix_config(mode, false));
      rig.freeze_at(static_cast<std::uint64_t>(
          fraction * static_cast<double>(dry.events())));
      (void)run_script(rig);
      images[i] = to_image(rig.recovered_data());
      ASSERT_GE(snapshot_index(snapshots, images[i]), 0)
          << to_string(mode) << " at fraction " << fraction;
      ++i;
    }
  }
}

}  // namespace
}  // namespace nvc::runtime
