// Crash matrix for the undo-log durability protocols (DESIGN.md §7).
//
// A miniature FASE engine — SC-offline policy + LogOrderedSink + UndoLog —
// runs against the ShadowPmem crash model with both the data region and the
// log segment living inside the shadow image. The durable image is frozen
// at EVERY event index in the run (each pstore and each attempted line
// flush, on either the data or the log path), which sweeps all the
// interesting boundaries: before a log sync, after the sync but before the
// data flush it ordered, mid data-flush burst, after the flushes but before
// commit, and after commit. For each freeze point the test restarts from
// the durable image, runs log recovery, and asserts the data region equals
// the state after SOME committed FASE — the all-or-nothing guarantee.
//
// A separate test checks strict/batched equivalence: same script, identical
// recovered-equivalent durable data images and identical data-flush counts,
// with batched issuing strictly fewer log fences.
//
// The async dimension runs the same engine with the flush-behind pipeline
// (core/flush_pipeline.hpp) in the data path: evicted lines queue in a ring
// popped by the background FlushWorker, so a freeze can land while lines
// are still queued — those write-backs claim later event indices and are
// dropped, exactly modeling power failing with writes still in flight. The
// sweep asserts recovery lands on a committed FASE at *every* freeze point,
// and an equivalence test asserts async data traffic is identical to sync.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "core/flush_pipeline.hpp"
#include "core/log_ordered_sink.hpp"
#include "core/policy.hpp"
#include "pmem/shadow.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {
namespace {

constexpr std::size_t kDataLines = 8;
constexpr std::size_t kDataBytes = kDataLines * kCacheLineSize;
constexpr std::size_t kCells = kDataBytes / sizeof(std::uint64_t);
constexpr std::size_t kLogOff = kDataBytes;  // 64-aligned: right after data
constexpr std::size_t kLogBytes = 32u << 10;
constexpr std::size_t kShadowBytes = kLogOff + kLogBytes;
constexpr int kFases = 8;
constexpr int kStoresPerFase = 6;

using DataImage = std::array<std::uint64_t, kCells>;

/// One FASE engine instance over a private shadow NVRAM. Layout:
/// [0, kDataBytes) data cells, [kLogOff, kLogOff+kLogBytes) log segment.
class CrashRig {
 public:
  explicit CrashRig(LogSyncMode mode, bool async = false)
      : mode_(mode),
        shadow_(kShadowBytes),
        log_shift_(line_of(reinterpret_cast<PmAddr>(shadow_.volatile_base()))),
        data_sink_(this, /*shift=*/0),
        log_sink_(this, log_shift_) {
    core::PolicyConfig pc;
    pc.cache_size = 2;  // tiny: forces mid-FASE evictions => many epochs
    policy_ = core::make_policy(core::PolicyKind::kSoftCacheOffline, pc);
    log_ = std::make_unique<UndoLog>(shadow_.volatile_base() + kLogOff,
                                     kLogBytes, &log_sink_, mode_);
    log_->format();  // pre-script: not an event, cannot be frozen away
    if (async) {
      // Flush-behind data path: a tiny ring (overflow falls back to the
      // synchronous FreezeSink) drained by the shared background worker.
      flush_channel_ = core::FlushWorker::shared().open_channel(
          std::make_unique<ForwardSink>(&data_sink_), /*capacity=*/8);
      async_sink_ = std::make_unique<core::AsyncFlushSink>(flush_channel_,
                                                           &data_sink_);
    }
    ordered_ = std::make_unique<core::LogOrderedSink>(
        async_sink_ ? static_cast<core::FlushSink*>(async_sink_.get())
                    : &data_sink_,
        log_.get());
    counting_ = true;
  }

  /// Power fails once `events()` reaches `event`: later flushes are lost.
  void freeze_at(std::uint64_t event) { freeze_event_ = event; }
  std::uint64_t events() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }
  std::uint64_t data_flushes() const noexcept {
    return data_sink_.flushes.load(std::memory_order_relaxed);
  }
  std::uint64_t log_fences() const noexcept {
    return log_sink_.fences.load(std::memory_order_relaxed);
  }

  void fase_begin() { policy_->on_fase_begin(*ordered_); }

  void fase_end() {
    // Mirrors Runtime::fase_end: the policy flushes its buffered lines
    // through the ordering decorator (log sync precedes each data flush),
    // then the log commits — the FASE's atomic commit point.
    policy_->on_fase_end(*ordered_);
    log_->commit();
  }

  void pstore(std::size_t cell, std::uint64_t value) {
    const PmAddr addr = cell * sizeof(std::uint64_t);
    std::uint64_t old;
    {
      std::lock_guard<std::mutex> lock(shadow_mutex_);
      old = shadow_.load_value<std::uint64_t>(addr);
    }
    log_->record(addr, &old, sizeof old);
    if (async_sink_ && async_sink_->maybe_inflight(line_of(addr))) {
      // Write-after-enqueue hazard (DESIGN.md §8, mirrors Runtime::pstore):
      // this line may still be queued, so its eventual write-back can carry
      // this store's bytes — the record covering them must be durable
      // before the data write below.
      log_->sync();
    }
    {
      std::lock_guard<std::mutex> lock(shadow_mutex_);
      shadow_.store_value(addr, value);
    }
    claim_event();
    policy_->on_store(line_of(addr), *ordered_);
  }

  /// Restart after the (frozen) power failure: reload from the durable
  /// image, run log recovery, persist the rolled-back bytes, and return
  /// the durable data region a restarted process would see.
  DataImage recovered_data() {
    // Quiesce the pipeline first: write-backs of lines that were still
    // queued at the freeze point claim post-freeze event indices and drop
    // — power failed with those writes in flight, they never persist.
    if (flush_channel_) flush_channel_->wait_drained();
    shadow_.crash();  // everything unflushed is gone
    LiveSink rsink(&shadow_, log_shift_);
    UndoLog log(shadow_.volatile_base() + kLogOff, kLogBytes, &rsink, mode_);
    EXPECT_TRUE(log.valid());  // format() preceded event counting
    if (log.needs_recovery()) {
      log.rollback(
          [&](std::uint64_t token, const void* bytes, std::uint32_t len) {
            shadow_.store(token, bytes, len);
          });
    }
    shadow_.flush_all();
    DataImage out;
    shadow_.load_durable(0, out.data(), sizeof out);
    return out;
  }

  DataImage durable_data() const {
    DataImage out;
    shadow_.load_durable(0, out.data(), sizeof out);
    return out;
  }

 private:
  /// Freezeable sink: pointer-based lines are translated to shadow-offset
  /// lines by `shift` (0 for the data path, whose lines already are shadow
  /// offsets; the log writes through raw pointers into the shadow image).
  struct FreezeSink final : core::FlushSink {
    FreezeSink(CrashRig* owner, LineAddr line_shift)
        : rig(owner), shift(line_shift) {}
    void flush_line(LineAddr line) override {
      flushes.fetch_add(1, std::memory_order_relaxed);
      // Atomically claim this flush's event index: in async mode the
      // background worker and the application thread race for slots, and
      // the power-failure cut must be a single consistent point.
      const std::uint64_t e = rig->claim_event();
      if (!rig->powered(e)) return;  // power is off: the line never persists
      std::lock_guard<std::mutex> lock(rig->shadow_mutex_);
      rig->shadow_.flush_line(line - shift);
    }
    void drain() override { fences.fetch_add(1, std::memory_order_relaxed); }
    CrashRig* rig;
    LineAddr shift;
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> fences{0};
  };

  /// Worker-side sink for the async data path: the channel owns this thin
  /// forwarder while the FreezeSink (and its counters) stay with the rig.
  struct ForwardSink final : core::FlushSink {
    explicit ForwardSink(core::FlushSink* t) : target(t) {}
    void flush_line(LineAddr line) override { target->flush_line(line); }
    void drain() override {}
    core::FlushSink* target;
  };

  /// Recovery-time sink: never frozen (the machine is back up).
  struct LiveSink final : core::FlushSink {
    LiveSink(pmem::ShadowPmem* target, LineAddr line_shift)
        : shadow(target), shift(line_shift) {}
    void flush_line(LineAddr line) override {
      shadow->flush_line(line - shift);
    }
    void drain() override {}
    pmem::ShadowPmem* shadow;
    LineAddr shift;
  };

  /// Claim the next event index (0 during pre-script setup, which cannot
  /// be frozen away).
  std::uint64_t claim_event() {
    if (!counting_) return 0;
    return events_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  bool powered(std::uint64_t event) const noexcept {
    return event <= freeze_event_;
  }

  LogSyncMode mode_;
  pmem::ShadowPmem shadow_;
  LineAddr log_shift_;
  bool counting_ = false;
  std::atomic<std::uint64_t> events_{0};
  std::uint64_t freeze_event_ = ~std::uint64_t{0};
  /// Serializes shadow-image access: the worker's write-back of a queued
  /// line may race the application thread's store to the same line (on
  /// hardware the coherent cache arbitrates; the shadow model needs a
  /// lock). Ordering between the two stays nondeterministic — that is the
  /// interleaving the matrix sweeps.
  std::mutex shadow_mutex_;
  FreezeSink data_sink_;
  FreezeSink log_sink_;
  std::unique_ptr<core::Policy> policy_;
  std::unique_ptr<UndoLog> log_;
  /// Async members sit between the sinks they use and ordered_ (which
  /// points at async_sink_): destruction drains the ring while the shadow
  /// and the FreezeSink are still alive.
  std::shared_ptr<core::FlushChannel> flush_channel_;
  std::unique_ptr<core::AsyncFlushSink> async_sink_;
  std::unique_ptr<core::LogOrderedSink> ordered_;
};

/// Deterministic script; returns the expected data image after each
/// committed FASE (index 0 = the initial all-zero state).
std::vector<DataImage> run_script(CrashRig& rig) {
  std::vector<DataImage> snapshots;
  DataImage state{};
  snapshots.push_back(state);
  Rng rng(99);
  for (int f = 0; f < kFases; ++f) {
    rig.fase_begin();
    for (int s = 0; s < kStoresPerFase; ++s) {
      const std::size_t cell = rng.below(kCells);
      const std::uint64_t value = rng();
      rig.pstore(cell, value);
      state[cell] = value;
    }
    rig.fase_end();
    snapshots.push_back(state);
  }
  return snapshots;
}

int snapshot_index(const std::vector<DataImage>& snapshots,
                   const DataImage& image) {
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (snapshots[i] == image) return static_cast<int>(i);
  }
  return -1;
}

struct MatrixParam {
  LogSyncMode mode;
  bool async;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CrashMatrix, EveryFreezePointRecoversToACommittedFase) {
  const auto [mode, async] = GetParam();

  // Dry run: learn the event count and the expected per-FASE snapshots.
  CrashRig dry(mode, async);
  const auto snapshots = run_script(dry);
  const std::uint64_t total = dry.events();
  ASSERT_GT(total, 100u) << "script too small to exercise boundaries";

  // Async runs are nondeterministic in their event *indexing* (worker
  // write-backs race the application thread for slots, and each hazard
  // sync adds log flushes), so a run's total can exceed the dry run's;
  // sweep well past it so late freeze points are hit in any interleaving.
  const std::uint64_t sweep_end = async ? total + 256 : total;

  int max_recovered = -1;
  for (std::uint64_t e = 0; e <= sweep_end; ++e) {
    CrashRig rig(mode, async);
    rig.freeze_at(e);
    (void)run_script(rig);
    const DataImage image = rig.recovered_data();
    const int idx = snapshot_index(snapshots, image);
    ASSERT_GE(idx, 0) << to_string(mode) << (async ? "/async" : "/sync")
                      << ": freeze at event " << e << "/" << total
                      << " recovered a state matching no committed FASE";
    if (!async) {
      // Durability is monotone in the freeze point: a later crash can never
      // recover to an older committed state. (Async runs are separate
      // interleavings per freeze index, so cross-run monotonicity is not a
      // guarantee — all-or-nothing above is.)
      ASSERT_GE(idx, max_recovered) << to_string(mode) << ": freeze " << e;
    }
    max_recovered = std::max(max_recovered, idx);
  }
  // The unfrozen end of the sweep must have reached the final state.
  EXPECT_EQ(max_recovered, kFases);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CrashMatrix,
    ::testing::Values(MatrixParam{LogSyncMode::kStrict, false},
                      MatrixParam{LogSyncMode::kBatched, false},
                      MatrixParam{LogSyncMode::kStrict, true},
                      MatrixParam{LogSyncMode::kBatched, true}),
    [](const auto& param_info) {
      return std::string(to_string(param_info.param.mode)) +
             (param_info.param.async ? "Async" : "Sync");
    });

TEST(CrashEquivalence, StrictAndBatchedConvergeWithFewerLogFences) {
  CrashRig strict(LogSyncMode::kStrict);
  const auto strict_snaps = run_script(strict);
  CrashRig batched(LogSyncMode::kBatched);
  const auto batched_snaps = run_script(batched);

  // Identical durable data images (no crash) and identical data-line flush
  // traffic — batching the log must not change what the policy persists.
  ASSERT_EQ(strict_snaps, batched_snaps);
  EXPECT_EQ(strict.durable_data(), batched.durable_data());
  EXPECT_EQ(strict.durable_data(), strict_snaps.back());
  EXPECT_EQ(strict.data_flushes(), batched.data_flushes());

  // The point of the exercise: O(records) => O(epochs) log fences.
  EXPECT_LT(batched.log_fences(), strict.log_fences());
  // Strict pays 2 fences per record plus 1 per commit (+1 from format()).
  EXPECT_EQ(strict.log_fences(),
            2u * kFases * kStoresPerFase + kFases + 1);
}

TEST(CrashEquivalence, AsyncDataTrafficIsIdenticalToSync) {
  // The pipeline moves write-backs in time, never adds or drops any: for
  // both log protocols, the async engine must produce exactly the sync
  // engine's durable image, per-FASE snapshots, and data-flush count.
  for (const LogSyncMode mode :
       {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
    CrashRig sync_rig(mode, /*async=*/false);
    const auto sync_snaps = run_script(sync_rig);
    CrashRig async_rig(mode, /*async=*/true);
    const auto async_snaps = run_script(async_rig);
    ASSERT_EQ(sync_snaps, async_snaps) << to_string(mode);
    EXPECT_EQ(sync_rig.durable_data(), async_rig.durable_data())
        << to_string(mode);
    EXPECT_EQ(sync_rig.data_flushes(), async_rig.data_flushes())
        << to_string(mode);
  }
}

TEST(CrashEquivalence, BatchedRecoversIdenticallyToStrictAtSharedBoundaries) {
  // Freeze both modes at their respective FASE-commit boundaries (event
  // streams differ, so align on fractions of the run) and check both roll
  // forward/back to committed states.
  for (const double fraction : {0.25, 0.5, 0.75}) {
    DataImage images[2];
    int i = 0;
    for (const LogSyncMode mode :
         {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
      CrashRig dry(mode);
      const auto snapshots = run_script(dry);
      CrashRig rig(mode);
      rig.freeze_at(static_cast<std::uint64_t>(
          fraction * static_cast<double>(dry.events())));
      (void)run_script(rig);
      images[i] = rig.recovered_data();
      ASSERT_GE(snapshot_index(snapshots, images[i]), 0)
          << to_string(mode) << " at fraction " << fraction;
      ++i;
    }
  }
}

}  // namespace
}  // namespace nvc::runtime
