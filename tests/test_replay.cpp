// Tests for the trace-replay layer (workloads/replay): flush-count replay,
// cost-model replay, aggregation, and barrier-event semantics.
#include <gtest/gtest.h>

#include "workloads/replay.hpp"

namespace nvc::workloads {
namespace {

ThreadTrace trace_of(std::initializer_list<TraceEvent> events) {
  ThreadTrace t;
  for (const TraceEvent& ev : events) {
    t.events.push_back(ev);
    if (ev.kind == TraceEvent::Kind::kStore) ++t.store_count;
    if (ev.kind == TraceEvent::Kind::kFaseEnd) ++t.fase_count;
  }
  return t;
}

TraceEvent store(LineAddr line) {
  return TraceEvent{TraceEvent::Kind::kStore, line};
}
TraceEvent begin() { return TraceEvent{TraceEvent::Kind::kFaseBegin, 0}; }
TraceEvent end() { return TraceEvent{TraceEvent::Kind::kFaseEnd, 0}; }
TraceEvent barrier() { return TraceEvent{TraceEvent::Kind::kBarrier, 0}; }
TraceEvent compute(std::uint64_t n) {
  return TraceEvent{TraceEvent::Kind::kCompute, n};
}

TEST(ReplayFlushCount, CountsLazyPerFase) {
  const auto t = trace_of({begin(), store(1), store(2), store(1), end(),
                           begin(), store(1), end()});
  const auto r = replay_flush_count(t, core::PolicyKind::kLazy);
  EXPECT_EQ(r.stores, 4u);
  EXPECT_EQ(r.fases, 2u);
  EXPECT_EQ(r.flushes, 3u);  // {1,2} then {1}
}

TEST(ReplayFlushCount, BarrierFlushesBufferedLines) {
  // Lazy with a mid-FASE barrier: the barrier flushes {1,2}; the post-
  // barrier rewrite of line 1 must be flushed again at FASE end.
  const auto t = trace_of(
      {begin(), store(1), store(2), barrier(), store(1), end()});
  const auto r = replay_flush_count(t, core::PolicyKind::kLazy);
  EXPECT_EQ(r.flushes, 3u);
}

TEST(ReplayFlushCount, BarrierClearsSoftwareCache) {
  core::PolicyConfig config;
  config.cache_size = 8;
  const auto t = trace_of(
      {begin(), store(1), store(1), barrier(), store(1), end()});
  const auto r = replay_flush_count(
      t, core::PolicyKind::kSoftCacheOffline, config);
  // Two combinable runs separated by the barrier: 2 flushes.
  EXPECT_EQ(r.flushes, 2u);
  EXPECT_EQ(r.stores, 3u);
}

TEST(ReplayFlushCount, UnterminatedFaseFlushedByFinish) {
  const auto t = trace_of({begin(), store(5)});
  const auto r = replay_flush_count(t, core::PolicyKind::kLazy);
  EXPECT_EQ(r.flushes, 1u);  // finish() drains the pending set
}

TEST(ReplayCostModel, ComputeEventsBecomeCycles) {
  const auto t = trace_of({begin(), compute(1000), end()});
  SimConfig config;
  const auto r =
      replay_cost_model(t, core::PolicyKind::kBest, config, /*seed=*/1);
  EXPECT_GE(r.cycles, 1000.0);
  EXPECT_EQ(r.instructions, 1000u);
  EXPECT_EQ(r.flushes, 0u);
}

TEST(ReplayCostModel, FlushesCostMoreThanBuffering) {
  ThreadTrace t;
  t.events.push_back(begin());
  for (int rep = 0; rep < 100; ++rep) {
    for (LineAddr l = 1; l <= 10; ++l) {
      t.events.push_back(store(l));
      ++t.store_count;
    }
  }
  t.events.push_back(end());
  ++t.fase_count;

  SimConfig config;
  config.policy.cache_size = 16;
  const auto eager =
      replay_cost_model(t, core::PolicyKind::kEager, config, 1);
  const auto cached = replay_cost_model(
      t, core::PolicyKind::kSoftCacheOffline, config, 1);
  EXPECT_GT(eager.cycles, 2 * cached.cycles);
  EXPECT_EQ(eager.flushes, 1000u);
  EXPECT_EQ(cached.flushes, 10u);
}

TEST(ReplayCostModel, PolicyInstructionsChargedToCore) {
  ThreadTrace t;
  t.events.push_back(begin());
  for (int i = 0; i < 100; ++i) {
    t.events.push_back(store(static_cast<LineAddr>(i % 4 + 1)));
    ++t.store_count;
  }
  t.events.push_back(end());

  SimConfig config;
  const auto best = replay_cost_model(t, core::PolicyKind::kBest, config, 1);
  const auto sc = replay_cost_model(
      t, core::PolicyKind::kSoftCacheOffline, config, 1);
  // SC executes its bookkeeping on top of the same accesses.
  EXPECT_GT(sc.instructions, best.instructions + 100 * 10);
}

TEST(SimRunResultAggregation, MakespanIsSlowest) {
  SimRunResult run;
  SimThreadResult a;
  a.cycles = 100;
  a.stores = 10;
  a.flushes = 2;
  a.instructions = 50;
  SimThreadResult b;
  b.cycles = 300;
  b.stores = 30;
  b.flushes = 4;
  b.instructions = 70;
  run.threads = {a, b};
  EXPECT_DOUBLE_EQ(run.makespan_cycles(), 300.0);
  EXPECT_EQ(run.total_stores(), 40u);
  EXPECT_EQ(run.total_flushes(), 6u);
  EXPECT_EQ(run.total_instructions(), 120u);
  EXPECT_NEAR(run.flush_ratio(), 6.0 / 40.0, 1e-12);
}

TEST(SimRunResultAggregation, L1RatioWeightedByAccesses) {
  SimRunResult run;
  SimThreadResult a;
  a.l1.accesses = 100;
  a.l1.misses = 10;
  SimThreadResult b;
  b.l1.accesses = 300;
  b.l1.misses = 90;
  run.threads = {a, b};
  EXPECT_NEAR(run.l1_miss_ratio(), 100.0 / 400.0, 1e-12);
}

TEST(SimRunResultAggregation, EmptyRunIsZero) {
  SimRunResult run;
  EXPECT_DOUBLE_EQ(run.makespan_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(run.flush_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(run.l1_miss_ratio(), 0.0);
}

}  // namespace
}  // namespace nvc::workloads
