#!/usr/bin/env python3
"""Exit-code contract of the bench regression gate (bench/compare.py).

The gate is what CI keys off, so its exit codes are load-bearing API:
0 = pass, 1 = regression beyond tolerance, 2 = could not run (missing or
malformed input). Golden fixtures in tests/data/compare/ pin each path,
including the two anti-flake rules — the >10% relative tolerance and the
20 ns absolute floor — and the aggregate-row skip.

Run directly (python3 tests/test_compare_gate.py) or via ctest as
`compare_gate`.
"""

import os
import subprocess
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(TESTS_DIR)
COMPARE = os.path.join(REPO, "bench", "compare.py")
DATA = os.path.join(TESTS_DIR, "data", "compare")


def run_gate(current, baseline, env=None, flags=None):
    """Run compare.py on fixture names; returns (exit_code, stdout)."""
    merged = dict(os.environ)
    merged.pop("NVC_BENCH_TOLERANCE", None)
    merged.pop("NVC_BENCH_MIN_DELTA_NS", None)
    merged.pop("NVC_BENCH_THREADS_NOISE", None)
    merged.update(env or {})
    proc = subprocess.run(
        [sys.executable, COMPARE] + (flags or []) +
        [os.path.join(DATA, current), os.path.join(DATA, baseline)],
        capture_output=True, text=True, env=merged, check=False)
    return proc.returncode, proc.stdout + proc.stderr


class CompareGateTest(unittest.TestCase):
    def test_pass_run_exits_zero(self):
        code, out = run_gate("current_pass.json", "baseline.json")
        self.assertEqual(code, 0, out)
        self.assertIn("no regression", out)
        # 8 -> 14 ns is a 75% ratio but only a 6 ns delta: the absolute
        # floor keeps sub-noise micros out of the gate.
        self.assertNotIn("REGRESSED", out)
        # Families present on only one side are reported, never failures.
        self.assertIn("MISSING", out)
        self.assertIn("NEW", out)

    def test_aggregate_rows_are_skipped(self):
        # current_pass.json carries a mean row at 400 ns for a 120 ns
        # baseline; if aggregates leaked into the comparison this would
        # regress.
        code, out = run_gate("current_pass.json", "baseline.json")
        self.assertEqual(code, 0, out)

    def test_regression_beyond_tolerance_exits_one(self):
        code, out = run_gate("current_regressed.json", "baseline.json")
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)
        self.assertIn("BM_PstoreStrict/64", out)

    def test_tolerance_env_override_widens_the_gate(self):
        # The same regressed run passes at 50% tolerance (1.42x < 1.5x).
        code, out = run_gate("current_regressed.json", "baseline.json",
                             env={"NVC_BENCH_TOLERANCE": "0.5"})
        self.assertEqual(code, 0, out)

    def test_missing_baseline_exits_two(self):
        code, out = run_gate("current_pass.json", "no_such_baseline.json")
        self.assertEqual(code, 2, out)
        self.assertIn("cannot load results", out)

    def test_missing_current_exits_two(self):
        code, out = run_gate("no_such_current.json", "baseline.json")
        self.assertEqual(code, 2, out)

    def test_malformed_input_exits_two(self):
        code, out = run_gate("malformed.json", "baseline.json")
        self.assertEqual(code, 2, out)
        self.assertIn("malformed", out)

    def test_threads_noise_default_absorbs_mt_swing(self):
        # The pooled-drain entry carries threads:8 and swings +60% — inside
        # the default 75% multi-threaded envelope, so the gate passes even
        # though 60% is far beyond the 10% single-threaded tolerance.
        code, out = run_gate("current_threads_noisy.json",
                             "baseline_threads.json")
        self.assertEqual(code, 0, out)
        self.assertNotIn("REGRESSED", out)

    def test_threads_noise_flag_tightens_mt_gate(self):
        # Narrowing the envelope to 30% makes the same +60% swing a
        # failure, and only the threads>1 entry trips.
        code, out = run_gate("current_threads_noisy.json",
                             "baseline_threads.json",
                             flags=["--threads-noise", "0.3"])
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSED", out)
        self.assertIn("BM_FlushPipelineDrainPool/workers:4/threads:8", out)
        self.assertNotIn("REGRESSED BM_PstoreStrict", out)

    def test_threads_noise_env_matches_flag(self):
        code, out = run_gate("current_threads_noisy.json",
                             "baseline_threads.json",
                             env={"NVC_BENCH_THREADS_NOISE": "0.3"})
        self.assertEqual(code, 1, out)

    def test_threads_noise_leaves_single_threaded_tight(self):
        # A +67% single-threaded regression still fails at the 10%
        # tolerance; the wide multi-threaded envelope must not leak.
        code, out = run_gate("current_threads_st_regressed.json",
                             "baseline_threads.json")
        self.assertEqual(code, 1, out)
        self.assertIn("BM_PstoreStrict/64", out)

    def test_exact_counters_match_exits_zero(self):
        # The exact_* counters agree bit for bit; regular counters
        # (flushes 2 -> 3) and an exact counter present only in the
        # baseline are reported but never gated, and the wear_* counter
        # without the exact_ prefix stays ungated even though it moved.
        code, out = run_gate("current_exact_ok.json", "baseline_exact.json")
        self.assertEqual(code, 0, out)
        self.assertIn("exact counters matched", out)
        self.assertIn("EXACT?", out)  # exact_bypassed only in the baseline
        self.assertNotIn("EXACT!", out)

    def test_exact_counter_divergence_exits_one(self):
        # Time moved well inside the 10% envelope, but an exact counter
        # diverged (4632 -> 8192 bytes/FASE): zero tolerance, gate fails.
        code, out = run_gate("current_exact_regressed.json",
                             "baseline_exact.json")
        self.assertEqual(code, 1, out)
        self.assertIn("EXACT!", out)
        self.assertIn("exact_bytes_per_fase", out)
        self.assertNotIn("REGRESSED", out)

    def test_exact_counter_gate_ignores_tolerance_env(self):
        # NVC_BENCH_TOLERANCE only widens the time envelope; exact
        # counters stay zero-tolerance.
        code, out = run_gate("current_exact_regressed.json",
                             "baseline_exact.json",
                             env={"NVC_BENCH_TOLERANCE": "5.0"})
        self.assertEqual(code, 1, out)
        self.assertIn("exact counters diverged", out)

    def test_threads_noise_bad_value_exits_two(self):
        code, out = run_gate("current_threads_noisy.json",
                             "baseline_threads.json",
                             flags=["--threads-noise", "wide"])
        self.assertEqual(code, 2, out)

    def test_threads_noise_missing_value_exits_two(self):
        code, out = run_gate("current_threads_noisy.json",
                             "baseline_threads.json",
                             flags=["--threads-noise"])
        self.assertEqual(code, 2, out)


if __name__ == "__main__":
    unittest.main()
